"""Figure 6 — PSGraph vs GraphX on traditional graph algorithms.

Paper cells (runtime in hours; "OOM" = out of memory at 55 GB/executor):

=====================  =====  ========  =======
cell                    DS     PSGraph   GraphX
=====================  =====  ========  =======
PageRank               DS1    0.5       4
PageRank               DS2    7         OOM
Common Neighbor        DS1    0.5       1.5
Common Neighbor        DS2    3.5       OOM
Fast Unfolding         DS1    3.5       10.3
K-Core                 DS1    2         OOM
Triangle Count         DS1    0.7       OOM
=====================  =====  ========  =======

Resources follow Sec. V-B1, scaled with the datasets: PSGraph gets 100
executors (20 GB) + 20 PS (15 GB) on DS1 and 300 executors (30 GB) + 200 PS
(30 GB) on DS2; GraphX gets 100x55 GB (DS1) and 500x55 GB (DS2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.config import (
    graphx_config_ds1,
    graphx_config_ds2,
    psgraph_config_ds1,
    psgraph_config_ds2,
)
from repro.common.metrics import MetricsRegistry
from repro.common.rng import DEFAULT_SEED
from repro.core.algorithms import (
    CommonNeighbor,
    FastUnfolding,
    KCore,
    PageRank,
    TriangleCount,
)
from repro.core.context import PSGraphContext
from repro.core.runner import GraphRunner
from repro.dataflow.context import SparkContext
from repro.datasets.tencent import ds1_spec, ds2_spec, generate_edges, write_edges
from repro.experiments.harness import ExperimentRow, timed_run
from repro.graphx import graph as gxgraph
from repro.graphx import algorithms as gxalgo
from repro.graphx.fast_unfolding import fast_unfolding as gx_fast_unfolding
from repro.hdfs.filesystem import Hdfs

#: Paper-reported hours per (algorithm, dataset, system); None = OOM.
PAPER_FIG6: Dict[Tuple[str, str, str], Optional[float]] = {
    ("PageRank", "DS1", "PSGraph"): 0.5,
    ("PageRank", "DS1", "GraphX"): 4.0,
    ("PageRank", "DS2", "PSGraph"): 7.0,
    ("PageRank", "DS2", "GraphX"): None,
    ("CommonNeighbor", "DS1", "PSGraph"): 0.5,
    ("CommonNeighbor", "DS1", "GraphX"): 1.5,
    ("CommonNeighbor", "DS2", "PSGraph"): 3.5,
    ("CommonNeighbor", "DS2", "GraphX"): None,
    ("FastUnfolding", "DS1", "PSGraph"): 3.5,
    ("FastUnfolding", "DS1", "GraphX"): 10.3,
    ("KCore", "DS1", "PSGraph"): 2.0,
    ("KCore", "DS1", "GraphX"): None,
    ("TriangleCount", "DS1", "PSGraph"): 0.7,
    ("TriangleCount", "DS1", "GraphX"): None,
}

#: Iteration budgets shared by both systems (identical work per cell).
PAGERANK_ITERS = 20
KCORE_ITERS = 40
FU_PASSES = 2
FU_MOVE_ITERS = 4

#: The cells of the figure: (algorithm, dataset).
FIG6_CELLS: List[Tuple[str, str]] = [
    ("PageRank", "DS1"),
    ("PageRank", "DS2"),
    ("CommonNeighbor", "DS1"),
    ("CommonNeighbor", "DS2"),
    ("FastUnfolding", "DS1"),
    ("KCore", "DS1"),
    ("TriangleCount", "DS1"),
]


def _psgraph_algo(name: str):
    if name == "PageRank":
        return PageRank(max_iterations=PAGERANK_ITERS, tol=0.0)
    if name == "CommonNeighbor":
        return CommonNeighbor(batch_size=8192)
    if name == "FastUnfolding":
        return FastUnfolding(num_passes=FU_PASSES,
                             max_move_iterations=FU_MOVE_ITERS)
    if name == "KCore":
        return KCore(max_iterations=KCORE_ITERS)
    if name == "TriangleCount":
        return TriangleCount(batch_size=8192)
    raise ValueError(name)


def _graphx_run(name: str, ctx: SparkContext, src: np.ndarray,
                dst: np.ndarray) -> object:
    g = gxgraph.Graph.from_edges(ctx, src, dst)
    if name == "PageRank":
        return gxalgo.pagerank(g, max_iterations=PAGERANK_ITERS, tol=0.0)
    if name == "CommonNeighbor":
        # GraphX survives CN by processing edges in chunks (many repeated
        # ship rounds — slow but memory-bounded, as in the paper's 1.5 h).
        return gxalgo.common_neighbor(g, num_chunks=32)
    if name == "FastUnfolding":
        return gx_fast_unfolding(
            ctx, src, dst, num_passes=FU_PASSES,
            max_move_iterations=FU_MOVE_ITERS,
        )
    if name == "KCore":
        return gxalgo.kcore(g, max_iterations=KCORE_ITERS)
    if name == "TriangleCount":
        return gxalgo.triangle_count(g)
    raise ValueError(name)


def run_figure6(scale_ds1: float = 1e-5, scale_ds2: float = 2e-6,
                cells: Optional[List[Tuple[str, str]]] = None,
                systems: Tuple[str, ...] = ("PSGraph", "GraphX"),
                seed: int = DEFAULT_SEED) -> List[ExperimentRow]:
    """Reproduce every cell of Figure 6; returns one row per (cell, system)."""
    cells = cells or FIG6_CELLS
    datasets = {}
    for ds_name, spec in (("DS1", ds1_spec(scale_ds1)),
                          ("DS2", ds2_spec(scale_ds2))):
        if any(ds == ds_name for _a, ds in cells):
            datasets[ds_name] = (spec, generate_edges(spec, seed))

    rows: List[ExperimentRow] = []
    for algo_name, ds_name in cells:
        spec, (src, dst) = datasets[ds_name]
        for system in systems:
            if system == "PSGraph":
                rows.append(_run_psgraph_cell(
                    algo_name, ds_name, spec, src, dst
                ))
            else:
                rows.append(_run_graphx_cell(
                    algo_name, ds_name, spec, src, dst
                ))
    return rows


def _run_psgraph_cell(algo_name: str, ds_name: str, spec, src, dst
                      ) -> ExperimentRow:
    base = psgraph_config_ds1() if ds_name == "DS1" else psgraph_config_ds2()
    cluster = base.scaled(spec.scale)
    hdfs = Hdfs(cluster.cost_model, MetricsRegistry())
    write_edges(hdfs, "/input/edges", src, dst,
                num_files=cluster.num_executors)
    ctx = PSGraphContext(cluster, hdfs=hdfs, app_name=f"fig6-{algo_name}")
    try:
        runner = GraphRunner(ctx)
        status, sim_s, wall_s, result = timed_run(
            lambda: runner.run(_psgraph_algo(algo_name), "/input/edges"),
            ctx.sim_time,
        )
        extra = {}
        if status == "ok":
            extra = {"iterations": result.iterations, **{
                k: v for k, v in result.stats.items()
                if isinstance(v, (int, float))
            }}
        return ExperimentRow(
            "figure6", "PSGraph", ds_name, algo_name, status, sim_s,
            spec.scale,
            paper_value=PAPER_FIG6[(algo_name, ds_name, "PSGraph")],
            wall_seconds=wall_s, extra=extra,
        )
    finally:
        ctx.stop()


def _run_graphx_cell(algo_name: str, ds_name: str, spec, src, dst
                     ) -> ExperimentRow:
    base = graphx_config_ds1() if ds_name == "DS1" else graphx_config_ds2()
    cluster = base.scaled(spec.scale)
    ctx = SparkContext(cluster, app_name=f"fig6-gx-{algo_name}")
    try:
        status, sim_s, wall_s, _result = timed_run(
            lambda: _graphx_run(algo_name, ctx, src, dst), ctx.sim_time
        )
        return ExperimentRow(
            "figure6", "GraphX", ds_name, algo_name, status, sim_s,
            spec.scale,
            paper_value=PAPER_FIG6[(algo_name, ds_name, "GraphX")],
            wall_seconds=wall_s,
        )
    finally:
        ctx.stop()
