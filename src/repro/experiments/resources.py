"""Resource efficiency — "PSGraph only needs half of the resources".

Sec. V-B1 makes two resource claims alongside the runtimes:

* on DS1, PSGraph's allocation (100 x 20 GB executors + 20 x 15 GB servers
  = 2.3 TB) is ~42 % of GraphX's (100 x 55 GB = 5.5 TB), and GraphX needs
  every byte of it — "GraphX fails due to an OOM error even giving 55 GB
  for each executor" on the heavier algorithms;
* on DS2, PSGraph finishes "with only half of the resources" while GraphX
  OOMs at full allocation.

This experiment reproduces the claim directly: run PageRank on DS1 with
GraphX at a sweep of executor grants and find its OOM frontier, then show
PSGraph completing below it.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List

from repro.common.config import GB, graphx_config_ds1, psgraph_config_ds1
from repro.common.metrics import MetricsRegistry
from repro.common.rng import DEFAULT_SEED
from repro.core.context import PSGraphContext
from repro.core.runner import GraphRunner
from repro.dataflow.context import SparkContext
from repro.datasets.tencent import ds1_spec, generate_edges, write_edges
from repro.experiments.figure6 import _graphx_run, _psgraph_algo
from repro.experiments.harness import timed_run
from repro.hdfs.filesystem import Hdfs


def total_memory_gb(num_executors: int, executor_gb: float,
                    num_servers: int = 0, server_gb: float = 0.0) -> float:
    """Total cluster memory of an allocation, in (paper-scale) GB."""
    return num_executors * executor_gb + num_servers * server_gb


def run_resource_efficiency(scale: float = 1e-5,
                            graphx_executor_gbs=(15.0, 25.0, 40.0, 55.0),
                            seed: int = DEFAULT_SEED) -> List[Dict]:
    """PageRank DS1: GraphX memory sweep vs PSGraph's smaller allocation.

    Returns:
        One row per configuration with the paper-scale total memory, the
        status (ok / OOM) and the projected hours.
    """
    spec = ds1_spec(scale)
    src, dst = generate_edges(spec, seed)
    rows: List[Dict] = []

    # GraphX at decreasing per-executor grants.
    for executor_gb in graphx_executor_gbs:
        base = graphx_config_ds1()
        cluster = replace(
            base, executor_mem_bytes=int(executor_gb * GB)
        ).scaled(spec.scale)
        ctx = SparkContext(cluster, app_name="resources-gx")
        try:
            status, sim_s, _wall, _r = timed_run(
                lambda: _graphx_run("PageRank", ctx, src, dst),
                ctx.sim_time,
            )
        finally:
            ctx.stop()
        rows.append({
            "system": "GraphX",
            "total_memory_gb": total_memory_gb(
                base.num_executors, executor_gb
            ),
            "executor_gb": executor_gb,
            "status": status,
            "projected_hours": (
                None if sim_s is None else sim_s / spec.scale / 3600
            ),
        })

    # PSGraph at the paper's (much smaller) allocation.
    ps_base = psgraph_config_ds1()
    cluster = ps_base.scaled(spec.scale)
    hdfs = Hdfs(cluster.cost_model, MetricsRegistry())
    write_edges(hdfs, "/input/edges", src, dst,
                num_files=cluster.num_executors)
    ctx = PSGraphContext(cluster, hdfs=hdfs, app_name="resources-ps")
    try:
        status, sim_s, _wall, _r = timed_run(
            lambda: GraphRunner(ctx).run(
                _psgraph_algo("PageRank"), "/input/edges"
            ),
            ctx.sim_time,
        )
    finally:
        ctx.stop()
    rows.append({
        "system": "PSGraph",
        "total_memory_gb": total_memory_gb(
            ps_base.num_executors, ps_base.executor_mem_bytes / GB,
            ps_base.num_servers, ps_base.server_mem_bytes / GB,
        ),
        "executor_gb": ps_base.executor_mem_bytes / GB,
        "status": status,
        "projected_hours": (
            None if sim_s is None else sim_s / spec.scale / 3600
        ),
    })
    return rows
