"""Experiment harness: rows, projection, OOM capture, pretty printing.

Every experiment module produces :class:`ExperimentRow` records carrying
both clocks — measured **sim-time** at mini scale and its linear
**projection to paper scale** (``paper = sim / scale``) — plus the paper's
reported number for side-by-side comparison.  An ``OOM`` status mirrors the
"OOM" cells of Fig. 6.
"""

from __future__ import annotations

# Experiments report the *host* runtime of the simulation alongside
# sim-time, so reading the wall clock here is the whole point.
# repro-lint: disable-file=SIM001
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.errors import SimulatedOOMError


@dataclass
class ExperimentRow:
    """One measured cell of a table/figure reproduction.

    Attributes:
        experiment: e.g. "figure6".
        system: "PSGraph" / "GraphX" / "Euler".
        dataset: "DS1" / "DS2" / "DS3".
        algorithm: algorithm label.
        status: "ok" or "OOM".
        sim_seconds: simulated runtime at mini scale (None on OOM).
        scale: dataset scale factor used.
        paper_value: the paper's reported value (hours unless noted).
        unit: unit of paper_value / projected value ("hours", "seconds", "%").
        wall_seconds: wall-clock of the mini run (for pytest-benchmark
            cross-checks).
        extra: free-form extras (iterations, residuals, accuracy, ...).
    """

    experiment: str
    system: str
    dataset: str
    algorithm: str
    status: str
    sim_seconds: Optional[float]
    scale: float
    paper_value: Optional[float] = None
    unit: str = "hours"
    wall_seconds: float = 0.0
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def projected(self) -> Optional[float]:
        """Linear projection of sim-time to paper scale, in ``unit``."""
        if self.sim_seconds is None:
            return None
        scaled = self.sim_seconds / self.scale
        if self.unit == "hours":
            return scaled / 3600.0
        return scaled

    def display_value(self) -> str:
        """Projected value or OOM, formatted."""
        if self.status == "OOM":
            return "OOM"
        value = self.projected
        if value is None:
            return "-"
        return f"{value:.2f}"


def timed_run(fn: Callable[[], Any], sim_time: Callable[[], float]
              ) -> Tuple[str, Optional[float], float, Any]:
    """Run ``fn`` capturing sim-time delta, wall time and simulated OOM.

    Returns:
        ``(status, sim_seconds, wall_seconds, result)``; on OOM the result
        is the exception and sim_seconds is None.
    """
    wall0 = time.perf_counter()
    sim0 = sim_time()
    try:
        result = fn()
    except SimulatedOOMError as oom:
        return "OOM", None, time.perf_counter() - wall0, oom
    return (
        "ok",
        sim_time() - sim0,
        time.perf_counter() - wall0,
        result,
    )


def format_rows(rows: List[ExperimentRow], title: str = "") -> str:
    """Format experiment rows as an aligned comparison table."""
    headers = [
        "experiment", "dataset", "algorithm", "system", "status",
        "projected", "paper", "unit", "sim_s", "wall_s",
    ]
    table: List[List[str]] = [headers]
    for r in rows:
        table.append([
            r.experiment, r.dataset, r.algorithm, r.system, r.status,
            r.display_value(),
            "-" if r.paper_value is None else f"{r.paper_value:g}",
            r.unit,
            "-" if r.sim_seconds is None else f"{r.sim_seconds:.3f}",
            f"{r.wall_seconds:.2f}",
        ])
    widths = [max(len(row[i]) for row in table)
              for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    for j, row in enumerate(table):
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        if j == 0:
            lines.append(sep)
    return "\n".join(lines)


def speedup(rows: List[ExperimentRow], dataset: str, algorithm: str,
            fast: str = "PSGraph", slow: str = "GraphX"
            ) -> Optional[float]:
    """Ratio slow/fast of projected runtimes for one cell (None on OOM)."""
    by_system = {
        r.system: r for r in rows
        if r.dataset == dataset and r.algorithm == algorithm
    }
    a = by_system.get(fast)
    b = by_system.get(slow)
    if not a or not b or a.projected is None or b.projected is None:
        return None
    if a.projected == 0:
        return None
    return b.projected / a.projected
