"""Run every experiment and print a consolidated report.

Usage::

    python -m repro.experiments.report            # everything
    python -m repro.experiments.report figure6    # one experiment
"""

from __future__ import annotations

import sys
from typing import Dict, List

from repro.experiments.ablations import (
    ablation_delta_pagerank,
    ablation_line_psfunc,
    ablation_partitioners,
    ablation_sync_modes,
)
from repro.experiments.figure6 import run_figure6
from repro.experiments.harness import ExperimentRow, format_rows, speedup
from repro.experiments.line_epochs import run_line_epochs
from repro.experiments.table1 import run_table1
from repro.experiments.resources import run_resource_efficiency
from repro.experiments.scaling import scaling_executors, scaling_servers
from repro.experiments.table2 import run_table2


def ascii_bars(rows: List[ExperimentRow], width: int = 40) -> str:
    """Figure-6-style horizontal bar chart of projected hours."""
    values = [r.projected for r in rows if r.projected is not None]
    if not values:
        return "(no completed runs)"
    top = max(values)
    lines = []
    for r in rows:
        label = f"{r.algorithm} ({r.dataset}) {r.system:8s}"
        if r.projected is None:
            lines.append(f"{label:42s} OOM")
        else:
            n = max(1, int(width * r.projected / top))
            lines.append(
                f"{label:42s} {'#' * n} {r.projected:.2f}h"
            )
    return "\n".join(lines)


def format_dicts(rows: List[Dict], title: str) -> str:
    """Small aligned table for ablation dict rows."""
    if not rows:
        return title
    keys = list(rows[0])
    table = [keys] + [
        [f"{r[k]:.4g}" if isinstance(r[k], float) else str(r[k])
         for k in keys]
        for r in rows
    ]
    widths = [max(len(row[i]) for row in table) for i in range(len(keys))]
    out = [title]
    for j, row in enumerate(table):
        out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        if j == 0:
            out.append("-+-".join("-" * w for w in widths))
    return "\n".join(out)


def run_all(which: str = "all") -> None:
    """Run the selected experiments and print their reports."""
    if which in ("all", "figure6"):
        rows = run_figure6()
        print(format_rows(rows, "== Figure 6: PSGraph vs GraphX =="))
        print()
        print(ascii_bars(rows))
        for cell in [("PageRank", "DS1"), ("CommonNeighbor", "DS1"),
                     ("FastUnfolding", "DS1")]:
            s = speedup(rows, cell[1], cell[0])
            if s:
                print(f"speedup {cell[0]} {cell[1]}: {s:.1f}x")
        print()
    if which in ("all", "table1"):
        rows = run_table1()
        print(format_rows(rows, "== Table I: GraphSage PSGraph vs Euler =="))
        for r in rows:
            if "accuracy_pct" in r.extra:
                print(f"  {r.system} accuracy: "
                      f"{r.extra['accuracy_pct']:.1f}% "
                      f"(paper {r.paper_value:g}%)")
        print()
    if which in ("all", "table2"):
        rows = run_table2()
        print(format_rows(rows, "== Table II: failure recovery =="))
        print()
    if which in ("all", "line"):
        rows = run_line_epochs()
        print(format_rows(rows, "== Sec. V-B2: LINE epochs =="))
        print()
    if which in ("all", "ablations"):
        print(format_dicts(ablation_delta_pagerank(),
                           "== Ablation: delta vs full PageRank =="))
        print()
        print(format_dicts(ablation_line_psfunc(),
                           "== Ablation: LINE psFunc vs pull =="))
        print()
        print(format_dicts(ablation_sync_modes(),
                           "== Ablation: BSP vs ASP =="))
        print()
        print(format_dicts(ablation_partitioners(),
                           "== Ablation: partitioner balance =="))
        print()
    if which in ("all", "resources"):
        rows = run_resource_efficiency()
        rows = [{k: (v if v is not None else "OOM") for k, v in r.items()}
                for r in rows]
        print(format_dicts(
            rows, "== Resource efficiency: PageRank DS1 memory sweep =="
        ))
        print()
    if which in ("all", "scaling"):
        print(format_dicts(scaling_servers(),
                           "== Scaling: PS servers (executors fixed) =="))
        print()
        print(format_dicts(scaling_executors(),
                           "== Scaling: executors (servers fixed) =="))
        print()


if __name__ == "__main__":
    run_all(sys.argv[1] if len(sys.argv) > 1 else "all")
