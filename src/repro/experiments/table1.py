"""Table I — GraphSage: PSGraph vs Euler on DS3.

Paper numbers::

    System   Preprocessing time   Training time      Accuracy
    Euler    8 hours              200 seconds/epoch  91.5%
    PSGraph  12 minutes           7 seconds/epoch    91.6%

Euler's 8 hours split into "4 hours for index mapping, 4 hours for
data-to-JSON transformation, and several minutes for JSON partitioning";
PSGraph preprocesses in-pipeline with Spark.  Resources per Sec. V-B3:
Euler 90 executors, PSGraph 30 executors + 30 PS.  Both train the same
two-layer GraphSage with k=2-hop sampling on the DS3 stand-in, so the
accuracy comparison is apples-to-apples.
"""

# Wall-clock timing is part of what these experiments report (host runtime
# of the simulation next to sim-time).
# repro-lint: disable-file=SIM001

from __future__ import annotations

from typing import Dict, List

from repro.common.config import euler_config_ds3, psgraph_config_ds3
from repro.common.metrics import MetricsRegistry
from repro.common.rng import DEFAULT_SEED
from repro.core.algorithms.graphsage import GraphSage, make_sage
from repro.core.context import PSGraphContext
from repro.core.ops import load_edges
from repro.datasets.tencent import (
    DEFAULT_SCALE_DS3,
    ds3_spec,
    generate_ds3_gnn,
    write_edges,
)
from repro.eulersim.euler import EulerSystem
from repro.experiments.harness import ExperimentRow
from repro.hdfs.filesystem import Hdfs
from repro.torchlite.script import ScriptModule

#: Paper values: (preprocess, per-epoch seconds, accuracy %).
PAPER_TABLE1: Dict[str, Dict[str, float]] = {
    "Euler": {"preprocess_hours": 8.0, "epoch_seconds": 200.0,
              "accuracy": 91.5},
    "PSGraph": {"preprocess_hours": 0.2, "epoch_seconds": 7.0,
                "accuracy": 91.6},
}

HIDDEN = 32
EPOCHS = 3
BATCH = 512
#: Euler trains with smaller per-worker minibatches (its trainer applies
#: one synchronous step per batch; more, smaller steps close the gap with
#: PSGraph's per-executor pushes).
EULER_BATCH = 64
LR = 0.02
FANOUTS = (10, 5)
#: Fraction of vertices with labels.  The paper's WeChat Pay label count
#: is unreported; 2% of DS3 (~600k labeled vertices at paper scale) puts
#: PSGraph's projected epoch time at the paper's ~7 s.
LABELED_FRACTION = 0.02


def run_table1(scale: float = DEFAULT_SCALE_DS3,
               feature_dim: int = 32, num_classes: int = 5,
               seed: int = DEFAULT_SEED) -> List[ExperimentRow]:
    """Reproduce Table I; returns rows for preprocessing / epoch / accuracy.

    Default scale is DS3/1000 (30k vertices / 100k edges).
    """
    spec = ds3_spec(scale)
    src, dst, feats, labels = generate_ds3_gnn(
        spec, feature_dim, num_classes, seed=seed
    )
    rows: List[ExperimentRow] = []
    rows.extend(_run_psgraph(spec, src, dst, feats, labels, seed))
    rows.extend(_run_euler(spec, src, dst, feats, labels, seed))
    return rows


def _mk_rows(system: str, spec, preprocess_s: float, epoch_s: float,
             accuracy: float, wall: float) -> List[ExperimentRow]:
    paper = PAPER_TABLE1[system]
    return [
        ExperimentRow(
            "table1", system, spec.name, "graphsage-preprocess", "ok",
            preprocess_s, spec.scale,
            paper_value=paper["preprocess_hours"], unit="hours",
            wall_seconds=wall,
        ),
        ExperimentRow(
            "table1", system, spec.name, "graphsage-epoch", "ok",
            epoch_s, spec.scale,
            paper_value=paper["epoch_seconds"], unit="seconds",
            wall_seconds=wall,
        ),
        ExperimentRow(
            "table1", system, spec.name, "graphsage-accuracy", "ok",
            None, spec.scale,
            paper_value=paper["accuracy"], unit="%",
            wall_seconds=wall,
            extra={"accuracy_pct": accuracy * 100.0},
        ),
    ]


def _run_psgraph(spec, src, dst, feats, labels,
                 seed: int) -> List[ExperimentRow]:
    import time

    cluster = psgraph_config_ds3().scaled(spec.scale)
    hdfs = Hdfs(cluster.cost_model, MetricsRegistry())
    write_edges(hdfs, "/input/ds3", src, dst,
                num_files=cluster.num_executors)
    ctx = PSGraphContext(cluster, hdfs=hdfs, app_name="table1-psgraph")
    wall0 = time.perf_counter()
    try:
        edges = load_edges(ctx.spark, "/input/ds3")
        algo = GraphSage(
            feats, labels, hidden=HIDDEN, num_classes=int(labels.max()) + 1,
            fanouts=FANOUTS, epochs=EPOCHS, batch_size=BATCH, lr=LR,
            labeled_fraction=LABELED_FRACTION, seed=seed,
        )
        result = algo.transform(ctx, edges)
        epoch_s = (sum(result.stats["epoch_sim_times"])
                   / len(result.stats["epoch_sim_times"]))
        return _mk_rows(
            "PSGraph", spec, result.stats["preprocess_sim_time"], epoch_s,
            result.stats["accuracy"], time.perf_counter() - wall0,
        )
    finally:
        ctx.stop()


def _run_euler(spec, src, dst, feats, labels,
               seed: int) -> List[ExperimentRow]:
    import time

    cluster = euler_config_ds3().scaled(spec.scale)
    system = EulerSystem(cluster, seed=seed)
    wall0 = time.perf_counter()
    try:
        write_edges(system.hdfs, "/input/ds3", src, dst, num_files=16)
        prep = system.preprocess("/input/ds3", feats, labels)
        blob = ScriptModule.trace(
            make_sage, in_dim=feats.shape[1], hidden=HIDDEN,
            num_classes=int(labels.max()) + 1, seed=seed,
        )
        stats = system.train_graphsage(
            blob, epochs=EPOCHS, batch_size=EULER_BATCH, fanouts=FANOUTS,
            lr=LR, labeled_fraction=LABELED_FRACTION,
        )
        epoch_s = (sum(stats["epoch_sim_times"])
                   / len(stats["epoch_sim_times"]))
        return _mk_rows(
            "Euler", spec, prep["total_s"], epoch_s, stats["accuracy"],
            time.perf_counter() - wall0,
        )
    finally:
        system.stop()
