"""Table II — failure recovery on common neighbor + DS1.

Paper::

    Algorithm        Without failure   Executor failure   PS failure
    Common neighbor  30 minutes        35 minutes         36 minutes

"We manually kill an executor and a parameter server.  The killed server
will restart and pull the checkpoint of model, i.e., neighbor tables, from
HDFS; and the killed executor will restart and pull the checkpoint of edges
from HDFS."

The reproduction injects each failure mid-scoring via a task hook: the
executor path exercises Spark's restart + lineage-reload (edge blocks are
re-read from HDFS), the server path exercises the PS master's health-check
+ checkpoint-reload protocol (the agents' RPCs fail, the master restarts
the server via Yarn and restores the neighbor-table partitions).
"""

# Wall-clock timing is part of what these experiments report (host runtime
# of the simulation next to sim-time).
# repro-lint: disable-file=SIM001

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.chaos import ChaosEngine, FaultSchedule, FaultSpec
from repro.common.config import psgraph_config_ds1
from repro.common.metrics import MetricsRegistry
from repro.common.rng import DEFAULT_SEED
from repro.core.algorithms import CommonNeighbor, PageRank
from repro.core.context import PSGraphContext
from repro.core.runner import GraphRunner
from repro.datasets.tencent import ds1_spec, generate_edges, write_edges
from repro.experiments.harness import ExperimentRow
from repro.hdfs.filesystem import Hdfs

#: Paper minutes per scenario.
PAPER_TABLE2: Dict[str, float] = {
    "none": 30.0,
    "executor": 35.0,
    "server": 36.0,
}

#: Paper-scale restart delay (container re-scheduling + process start).
RESTART_DELAY_PAPER_S = 90.0

#: Scenarios in table order.
SCENARIOS = ("none", "executor", "server")


def run_table2(scale: float = 1e-5, kill_after_tasks: int = 30,
               seed: int = DEFAULT_SEED) -> List[ExperimentRow]:
    """Run common neighbor three times, injecting one failure per run."""
    spec = ds1_spec(scale)
    src, dst = generate_edges(spec, seed)
    rows: List[ExperimentRow] = []
    for scenario in SCENARIOS:
        rows.append(
            _run_scenario(scenario, spec, src, dst, kill_after_tasks)
        )
    return rows


def _run_scenario(scenario: str, spec, src, dst,
                  kill_after_tasks: int) -> ExperimentRow:
    import time

    cluster = psgraph_config_ds1().scaled(spec.scale)
    hdfs = Hdfs(cluster.cost_model, MetricsRegistry())
    write_edges(hdfs, "/input/edges", src, dst,
                num_files=cluster.num_executors)
    ctx = PSGraphContext(cluster, hdfs=hdfs, app_name=f"table2-{scenario}")
    # Fixed (non-volume) restart latency is injected pre-scaled so the
    # linear projection recovers the paper-scale delay.
    ctx.spark.resource_manager.restart_delay_s = (
        RESTART_DELAY_PAPER_S * spec.scale
    )
    # Health-check pings are fixed-latency too: inject pre-scaled (1 s of
    # paper time per probe) so the projection stays honest.
    ctx.ps.master.health_check_cost_s = 1.0 * spec.scale
    wall0 = time.perf_counter()
    state = {"done": 0, "killed": False}

    def hook(_stage: int, _partition: int, kind: str) -> None:
        if kind != "result" or state["killed"]:
            return
        state["done"] += 1
        if state["done"] < kill_after_tasks:
            return
        state["killed"] = True
        if scenario == "executor":
            ctx.spark.kill_executor(3, reason="table2 injection")
        elif scenario == "server":
            ctx.ps.kill_server(1)

    try:
        runner = GraphRunner(ctx)
        sim0 = ctx.sim_time()
        result = runner.run(
            CommonNeighbor(batch_size=8192, checkpoint=True),
            "/input/edges",
        )
        # Inject the failure mid-scoring (the paper kills the containers
        # while the job is running over the checkpointed model).
        if scenario != "none":
            ctx.spark.add_task_hook(hook)
        edges_scored = result.output.count()  # triggers the scoring stage
        ctx.sync_clocks()
        sim_s = ctx.sim_time() - sim0
        recovered: Optional[int] = (
            ctx.ps.master.recoveries if scenario == "server" else
            ctx.spark.executors[3].container.restarts
            if scenario == "executor" else 0
        )
        return ExperimentRow(
            "table2", "PSGraph", spec.name,
            f"common-neighbor/{scenario}", "ok", sim_s, spec.scale,
            paper_value=PAPER_TABLE2[scenario] / 60.0, unit="hours",
            wall_seconds=time.perf_counter() - wall0,
            extra={"edges_scored": edges_scored,
                   "recoveries": recovered},
        )
    finally:
        ctx.stop()


# ----------------------------------------------------------------------
# recovery-cost comparison: checkpoints vs lineage
# ----------------------------------------------------------------------


def run_recovery_comparison(scale: float = 1e-5, iterations: int = 10,
                            fail_iteration: int = 5,
                            seed: int = DEFAULT_SEED
                            ) -> List[ExperimentRow]:
    """PSGraph checkpoint-recovery vs GraphX lineage-recompute cost.

    Extends Table II along the fault-handling axis of Ammar & Özsu's
    comparison methodology: the same PageRank job loses its model state
    mid-run.  PSGraph (per-iteration checkpoints, strict recovery mode)
    restores the last checkpoint and redoes at most one iteration; GraphX
    keeps no model checkpoint, so the materialized vertex state must be
    recomputed from lineage — every completed iteration re-runs.

    Each system runs twice — clean and faulted — and the faulted row's
    ``extra["recovery_sim_s"]`` is the sim-time difference, i.e. the pure
    recovery cost.
    """
    import time

    spec = ds1_spec(scale)
    src, dst = generate_edges(spec, seed)
    restart_delay_s = RESTART_DELAY_PAPER_S * spec.scale

    def ps_run(faulted: bool) -> Tuple[float, float, Dict[str, float]]:
        cluster = psgraph_config_ds1().scaled(spec.scale)
        hdfs = Hdfs(cluster.cost_model, MetricsRegistry())
        write_edges(hdfs, "/input/edges", src, dst,
                    num_files=cluster.num_executors)
        ctx = PSGraphContext(cluster, hdfs=hdfs,
                             app_name="table2-recovery-ps",
                             checkpoint_interval=1)
        ctx.spark.resource_manager.restart_delay_s = restart_delay_s
        ctx.ps.master.health_check_cost_s = 1.0 * spec.scale
        engine = None
        wall0 = time.perf_counter()
        try:
            if faulted:
                schedule = FaultSchedule(
                    [FaultSpec("kill_server", index=1,
                               at_epoch=fail_iteration)],
                    seed=seed,
                )
                engine = ChaosEngine(schedule, ctx.spark, ctx.ps).attach()
            result = GraphRunner(ctx).run(
                PageRank(max_iterations=iterations, tol=0.0),
                "/input/edges",
            )
            rank_rows = result.output.rdd.collect()
            checksum = float(sum(r[1] for r in rank_rows))
            return ctx.sim_time(), time.perf_counter() - wall0, {
                "iterations": float(result.iterations),
                "recoveries": float(ctx.ps.master.recoveries),
                "ranks_checksum": checksum,
            }
        finally:
            if engine is not None:
                engine.detach()
            ctx.stop()

    def gx_run(faulted: bool) -> Tuple[float, float, Dict[str, float]]:
        from repro.common.config import graphx_config_ds1
        from repro.dataflow.context import SparkContext
        from repro.graphx import algorithms as gxalgo
        from repro.graphx.graph import Graph

        cluster = graphx_config_ds1().scaled(spec.scale)
        ctx = SparkContext(cluster, app_name="table2-recovery-gx")
        ctx.resource_manager.restart_delay_s = restart_delay_s
        wall0 = time.perf_counter()
        try:
            if faulted:
                # The work the fault destroys: ``fail_iteration``
                # supersteps complete, then the node loss discards the
                # materialized vertex state and lineage recomputes the
                # job from superstep 0.
                lost = Graph.from_edges(ctx, src, dst)
                gxalgo.pagerank(lost, max_iterations=fail_iteration,
                                tol=0.0)
                lost.unpersist()
                ctx.kill_executor(1, reason="recovery comparison")
                ctx.restart_executor(1)
            g = Graph.from_edges(ctx, src, dst)
            _ids, ranks, iters = gxalgo.pagerank(
                g, max_iterations=iterations, tol=0.0
            )
            ctx.sync_clocks()
            return ctx.sim_time(), time.perf_counter() - wall0, {
                "iterations": float(iters),
                "ranks_checksum": float(ranks.sum()),
            }
        finally:
            ctx.stop()

    rows: List[ExperimentRow] = []
    for system, run in (("PSGraph", ps_run), ("GraphX", gx_run)):
        clean_sim, clean_wall, clean_extra = run(False)
        fault_sim, fault_wall, fault_extra = run(True)
        rows.append(ExperimentRow(
            "table2-recovery", system, spec.name, "pagerank/clean",
            "ok", clean_sim, spec.scale, unit="seconds",
            wall_seconds=clean_wall, extra=dict(clean_extra),
        ))
        rows.append(ExperimentRow(
            "table2-recovery", system, spec.name, "pagerank/recovery",
            "ok", fault_sim, spec.scale, unit="seconds",
            wall_seconds=fault_wall,
            extra={**fault_extra,
                   "recovery_sim_s": fault_sim - clean_sim},
        ))
    return rows
