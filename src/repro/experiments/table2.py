"""Table II — failure recovery on common neighbor + DS1.

Paper::

    Algorithm        Without failure   Executor failure   PS failure
    Common neighbor  30 minutes        35 minutes         36 minutes

"We manually kill an executor and a parameter server.  The killed server
will restart and pull the checkpoint of model, i.e., neighbor tables, from
HDFS; and the killed executor will restart and pull the checkpoint of edges
from HDFS."

The reproduction injects each failure mid-scoring via a task hook: the
executor path exercises Spark's restart + lineage-reload (edge blocks are
re-read from HDFS), the server path exercises the PS master's health-check
+ checkpoint-reload protocol (the agents' RPCs fail, the master restarts
the server via Yarn and restores the neighbor-table partitions).
"""

# Wall-clock timing is part of what these experiments report (host runtime
# of the simulation next to sim-time).
# repro-lint: disable-file=SIM001

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.config import psgraph_config_ds1
from repro.common.metrics import MetricsRegistry
from repro.common.rng import DEFAULT_SEED
from repro.core.algorithms import CommonNeighbor
from repro.core.context import PSGraphContext
from repro.core.runner import GraphRunner
from repro.datasets.tencent import ds1_spec, generate_edges, write_edges
from repro.experiments.harness import ExperimentRow
from repro.hdfs.filesystem import Hdfs

#: Paper minutes per scenario.
PAPER_TABLE2: Dict[str, float] = {
    "none": 30.0,
    "executor": 35.0,
    "server": 36.0,
}

#: Paper-scale restart delay (container re-scheduling + process start).
RESTART_DELAY_PAPER_S = 90.0

#: Scenarios in table order.
SCENARIOS = ("none", "executor", "server")


def run_table2(scale: float = 1e-5, kill_after_tasks: int = 30,
               seed: int = DEFAULT_SEED) -> List[ExperimentRow]:
    """Run common neighbor three times, injecting one failure per run."""
    spec = ds1_spec(scale)
    src, dst = generate_edges(spec, seed)
    rows: List[ExperimentRow] = []
    for scenario in SCENARIOS:
        rows.append(
            _run_scenario(scenario, spec, src, dst, kill_after_tasks)
        )
    return rows


def _run_scenario(scenario: str, spec, src, dst,
                  kill_after_tasks: int) -> ExperimentRow:
    import time

    cluster = psgraph_config_ds1().scaled(spec.scale)
    hdfs = Hdfs(cluster.cost_model, MetricsRegistry())
    write_edges(hdfs, "/input/edges", src, dst,
                num_files=cluster.num_executors)
    ctx = PSGraphContext(cluster, hdfs=hdfs, app_name=f"table2-{scenario}")
    # Fixed (non-volume) restart latency is injected pre-scaled so the
    # linear projection recovers the paper-scale delay.
    ctx.spark.resource_manager.restart_delay_s = (
        RESTART_DELAY_PAPER_S * spec.scale
    )
    # Health-check pings are fixed-latency too: inject pre-scaled (1 s of
    # paper time per probe) so the projection stays honest.
    ctx.ps.master.health_check_cost_s = 1.0 * spec.scale
    wall0 = time.perf_counter()
    state = {"done": 0, "killed": False}

    def hook(_stage: int, _partition: int, kind: str) -> None:
        if kind != "result" or state["killed"]:
            return
        state["done"] += 1
        if state["done"] < kill_after_tasks:
            return
        state["killed"] = True
        if scenario == "executor":
            ctx.spark.kill_executor(3, reason="table2 injection")
        elif scenario == "server":
            ctx.ps.kill_server(1)

    try:
        runner = GraphRunner(ctx)
        sim0 = ctx.sim_time()
        result = runner.run(
            CommonNeighbor(batch_size=8192, checkpoint=True),
            "/input/edges",
        )
        # Inject the failure mid-scoring (the paper kills the containers
        # while the job is running over the checkpointed model).
        if scenario != "none":
            ctx.spark.add_task_hook(hook)
        edges_scored = result.output.count()  # triggers the scoring stage
        ctx.sync_clocks()
        sim_s = ctx.sim_time() - sim0
        recovered: Optional[int] = (
            ctx.ps.master.recoveries if scenario == "server" else
            ctx.spark.executors[3].container.restarts
            if scenario == "executor" else 0
        )
        return ExperimentRow(
            "table2", "PSGraph", spec.name,
            f"common-neighbor/{scenario}", "ok", sim_s, spec.scale,
            paper_value=PAPER_TABLE2[scenario] / 60.0, unit="hours",
            wall_seconds=time.perf_counter() - wall0,
            extra={"edges_scored": edges_scored,
                   "recoveries": recovered},
        )
    finally:
        ctx.stop()
