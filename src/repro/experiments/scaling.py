"""Scaling experiments (extension): runtime vs resource allocation.

The paper reports fixed allocations per dataset; these sweeps expose the
*why* behind them on the same metered substrate:

* :func:`scaling_servers` — PSGraph PageRank runtime as the PS fleet grows
  with executors fixed.  The agents' congestion factor
  (``executors / servers``) shrinks, so pull/push time falls until compute
  dominates — the knee tells you how many servers a workload deserves
  (the paper gives DS1 20 servers for 100 executors, DS2 200 for 300).
* :func:`scaling_executors` — runtime as executors grow with servers
  fixed: near-linear at first, then the shared servers congest.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.common.config import GB, ClusterConfig
from repro.common.rng import DEFAULT_SEED
from repro.core.algorithms import PageRank
from repro.core.context import PSGraphContext
from repro.core.ops import edges_from_arrays
from repro.datasets.generators import powerlaw_graph

#: Workload used by both sweeps.
NUM_VERTICES = 4000
NUM_EDGES = 60000
ITERATIONS = 10


def _run_pagerank(num_executors: int, num_servers: int,
                  seed: int) -> float:
    cluster = ClusterConfig(
        num_executors=num_executors, executor_mem_bytes=4 * GB,
        num_servers=num_servers, server_mem_bytes=4 * GB,
    )
    ctx = PSGraphContext(cluster, app_name="scaling")
    try:
        src, dst = powerlaw_graph(NUM_VERTICES, NUM_EDGES, seed=seed)
        edges = edges_from_arrays(ctx.spark, src, dst)
        t0 = ctx.sim_time()
        PageRank(max_iterations=ITERATIONS, tol=0.0).transform(ctx, edges)
        return ctx.sim_time() - t0
    finally:
        ctx.stop()


def scaling_servers(server_counts: Sequence[int] = (1, 2, 4, 8, 16),
                    num_executors: int = 32,
                    seed: int = DEFAULT_SEED) -> List[Dict]:
    """PageRank sim time vs PS fleet size (executors fixed)."""
    out: List[Dict] = []
    for s in server_counts:
        sim = _run_pagerank(num_executors, s, seed)
        out.append({
            "servers": s,
            "executors": num_executors,
            "sim_seconds": sim,
            "congestion": max(1.0, num_executors / s),
        })
    return out


def scaling_executors(executor_counts: Sequence[int] = (4, 8, 16, 32),
                      num_servers: int = 4,
                      seed: int = DEFAULT_SEED) -> List[Dict]:
    """PageRank sim time vs executor count (servers fixed)."""
    out: List[Dict] = []
    for e in executor_counts:
        sim = _run_pagerank(e, num_servers, seed)
        out.append({
            "executors": e,
            "servers": num_servers,
            "sim_seconds": sim,
            "congestion": max(1.0, e / num_servers),
        })
    return out
