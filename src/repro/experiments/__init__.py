"""Experiment harness: regenerate every table and figure of the paper."""

from repro.experiments.ablations import (
    ablation_delta_pagerank,
    ablation_line_psfunc,
    ablation_partitioners,
    ablation_sync_modes,
)
from repro.experiments.figure6 import FIG6_CELLS, PAPER_FIG6, run_figure6
from repro.experiments.harness import (
    ExperimentRow,
    format_rows,
    speedup,
    timed_run,
)
from repro.experiments.line_epochs import run_line_epochs
from repro.experiments.resources import run_resource_efficiency
from repro.experiments.scaling import scaling_executors, scaling_servers
from repro.experiments.table1 import PAPER_TABLE1, run_table1
from repro.experiments.table2 import PAPER_TABLE2, run_table2

__all__ = [
    "ExperimentRow",
    "FIG6_CELLS",
    "PAPER_FIG6",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "ablation_delta_pagerank",
    "ablation_line_psfunc",
    "ablation_partitioners",
    "ablation_sync_modes",
    "format_rows",
    "run_figure6",
    "run_line_epochs",
    "run_resource_efficiency",
    "run_table1",
    "run_table2",
    "scaling_executors",
    "scaling_servers",
    "speedup",
    "timed_run",
]
