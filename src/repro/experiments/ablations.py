"""Ablation experiments for the design choices DESIGN.md calls out.

Not part of the paper's evaluation — these isolate *why* PSGraph's design
decisions matter, using the same metered substrate:

* delta vs full PageRank (Sec. IV-A's increment optimization);
* psFunc server-side dots/updates vs pulling embeddings for LINE
  (Sec. IV-D);
* BSP vs ASP synchronization (Sec. III-A) under a straggling executor;
* hash vs range vs hash-range partitioning load balance (Sec. III-A).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.common.config import ClusterConfig
from repro.common.metrics import PS_PULL_BYTES, PS_PUSH_BYTES
from repro.common.rng import DEFAULT_SEED
from repro.core.algorithms import Line, PageRank
from repro.core.context import PSGraphContext
from repro.core.ops import edges_from_arrays
from repro.datasets.generators import powerlaw_graph
from repro.ps.partitioner import make_ps_partitioner


def _small_ctx(num_executors=8, num_servers=4,
               sync_mode: str = "bsp") -> PSGraphContext:
    cluster = ClusterConfig(
        num_executors=num_executors, executor_mem_bytes=1 << 40,
        num_servers=num_servers, server_mem_bytes=1 << 40,
    )
    return PSGraphContext(cluster, sync_mode=sync_mode)


def ablation_delta_pagerank(num_vertices: int = 4000,
                            num_edges: int = 40000,
                            iterations: int = 40,
                            threshold: float = 1e-3,
                            seed: int = DEFAULT_SEED) -> List[Dict]:
    """Delta vs thresholded-delta vs full PageRank: PS traffic + sim time."""
    src, dst = powerlaw_graph(num_vertices, num_edges, seed=seed)
    out: List[Dict] = []
    variants = [
        ("full-ranks", dict(use_delta=False)),
        ("delta", dict(use_delta=True)),
        ("delta-threshold", dict(use_delta=True,
                                 delta_threshold=threshold)),
    ]
    for name, kwargs in variants:
        ctx = _small_ctx()
        try:
            edges = edges_from_arrays(ctx.spark, src, dst)
            t0 = ctx.sim_time()
            result = PageRank(
                max_iterations=iterations, tol=0.0, **kwargs
            ).transform(ctx, edges)
            ranks = {r["vertex"]: r["rank"]
                     for r in result.output.collect()}
            out.append({
                "variant": name,
                "sim_seconds": ctx.sim_time() - t0,
                "pull_bytes": ctx.metrics.get(PS_PULL_BYTES),
                "push_bytes": ctx.metrics.get(PS_PUSH_BYTES),
                "residual": result.stats["residual"],
                "rank_checksum": sum(ranks.values()),
            })
        finally:
            ctx.stop()
    return out


def ablation_line_psfunc(num_vertices: int = 1000, num_edges: int = 8000,
                         dim: int = 128,
                         seed: int = DEFAULT_SEED) -> List[Dict]:
    """Server-side dots/updates vs pulling whole embedding rows."""
    src, dst = powerlaw_graph(num_vertices, num_edges, seed=seed)
    out: List[Dict] = []
    for name, use_psfunc in (("psfunc-on-ps", True),
                             ("pull-embeddings", False)):
        # Few servers, many executors: the congestion regime where moving
        # embedding rows hurts (Sec. IV-D's motivation).
        ctx = _small_ctx(num_executors=16, num_servers=2)
        try:
            edges = edges_from_arrays(ctx.spark, src, dst)
            t0 = ctx.sim_time()
            result = Line(
                dim=dim, epochs=1, batch_size=1024, seed=seed,
                use_psfunc=use_psfunc,
            ).transform(ctx, edges)
            out.append({
                "variant": name,
                "sim_seconds": ctx.sim_time() - t0,
                "pull_bytes": ctx.metrics.get(PS_PULL_BYTES),
                "push_bytes": ctx.metrics.get(PS_PUSH_BYTES),
                "loss": result.stats["epoch_losses"][-1],
            })
        finally:
            ctx.stop()
    return out


def ablation_sync_modes(num_vertices: int = 2000, num_edges: int = 20000,
                        iterations: int = 10,
                        straggler_slowdown_s: float = 0.005,
                        seed: int = DEFAULT_SEED) -> List[Dict]:
    """BSP vs ASP when one executor is slow.

    A straggling *server* delays every BSP barrier (executors wait for
    the slowest participant); under ASP the workers proceed and the job
    time ignores the server's lag.
    """
    src, dst = powerlaw_graph(num_vertices, num_edges, seed=seed)
    out: List[Dict] = []
    for mode in ("bsp", "asp"):
        ctx = _small_ctx(sync_mode=mode)
        try:
            # Make PS server 0 a straggler: pre-charge its clock per task.
            def drag(_s, _p, _k, ctx=ctx):
                ctx.ps.servers[0].container.clock.advance(
                    straggler_slowdown_s
                )

            ctx.spark.add_task_hook(drag)
            edges = edges_from_arrays(ctx.spark, src, dst)
            t0 = ctx.sim_time()
            PageRank(max_iterations=iterations, tol=0.0).transform(
                ctx, edges
            )
            out.append({
                "variant": mode,
                "sim_seconds": ctx.sim_time() - t0,
            })
        finally:
            ctx.stop()
    return out


def ablation_partitioners(num_vertices: int = 100_000,
                          num_partitions: int = 16,
                          seed: int = DEFAULT_SEED) -> List[Dict]:
    """Load balance of hash / range / hash-range for a skewed key pattern.

    Keys are drawn with a power-law over the id space *without* the id
    scatter (ids correlate with hotness, as they do for time-ordered user
    ids) — range partitioning then concentrates hot ranges while hash and
    hash-range spread them.
    """
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, num_vertices + 1, dtype=np.float64)
    probs = ranks ** -0.8
    probs /= probs.sum()
    keys = rng.choice(num_vertices, size=200_000, p=probs)
    out: List[Dict] = []
    for kind in ("hash", "range", "hash-range"):
        partitioner = make_ps_partitioner(kind, num_vertices,
                                          num_partitions)
        counts = np.bincount(partitioner.partition_array(keys),
                             minlength=partitioner.num_partitions)
        out.append({
            "variant": kind,
            "max_load": int(counts.max()),
            "mean_load": float(counts.mean()),
            "imbalance": float(counts.max() / counts.mean()),
        })
    return out
