"""Sec. V-B2 — LINE on DS1 (graph embedding).

"On the DS1 dataset using an embedding size of 128 and the same resources
as TG, PSGraph takes 40 minutes per epoch and 4 hours in total."  (No
distributed open-source baseline existed, so the paper reports PSGraph
alone; so do we.)
"""

# Wall-clock timing is part of what these experiments report (host runtime
# of the simulation next to sim-time).
# repro-lint: disable-file=SIM001

from __future__ import annotations

from typing import List

from repro.common.config import psgraph_config_ds1
from repro.common.metrics import MetricsRegistry
from repro.common.rng import DEFAULT_SEED
from repro.core.algorithms import Line
from repro.core.context import PSGraphContext
from repro.core.runner import GraphRunner
from repro.datasets.tencent import ds1_spec, generate_edges, write_edges
from repro.experiments.harness import ExperimentRow
from repro.hdfs.filesystem import Hdfs

#: Paper: 40 minutes per epoch, 4 hours total (i.e. 6 epochs).
PAPER_EPOCH_HOURS = 40.0 / 60.0
PAPER_TOTAL_HOURS = 4.0
PAPER_DIM = 128


def run_line_epochs(scale: float = 1e-5, dim: int = PAPER_DIM,
                    epochs: int = 3, batch_size: int = 4096,
                    seed: int = DEFAULT_SEED) -> List[ExperimentRow]:
    """Measure LINE per-epoch sim time on the DS1 stand-in."""
    import time

    spec = ds1_spec(scale)
    src, dst = generate_edges(spec, seed)
    # The paper claims "the same resources as TG", but 0.8 B vertices x
    # (128-dim embedding + 128-dim context) in fp32 is ~820 GB — more than
    # the TG allocation's 20 x 15 GB of server memory.  We quadruple the
    # server grant so the model fits (EXPERIMENTS.md discusses this).
    base = psgraph_config_ds1()
    from dataclasses import replace
    cluster = replace(
        base, server_mem_bytes=base.server_mem_bytes * 4
    ).scaled(scale)
    hdfs = Hdfs(cluster.cost_model, MetricsRegistry())
    write_edges(hdfs, "/input/edges", src, dst,
                num_files=cluster.num_executors)
    ctx = PSGraphContext(cluster, hdfs=hdfs, app_name="line-epochs")
    wall0 = time.perf_counter()
    try:
        runner = GraphRunner(ctx)
        algo = Line(dim=dim, order=2, epochs=epochs,
                    batch_size=batch_size, seed=seed)
        result = runner.run(algo, "/input/edges")
        wall = time.perf_counter() - wall0
        times = result.stats["epoch_sim_times"]
        losses = result.stats["epoch_losses"]
        rows = [
            ExperimentRow(
                "line", "PSGraph", spec.name, f"line-epoch-{i}", "ok",
                t, scale, paper_value=PAPER_EPOCH_HOURS, unit="hours",
                wall_seconds=wall,
                extra={"loss": losses[i]},
            )
            for i, t in enumerate(times)
        ]
        rows.append(
            ExperimentRow(
                "line", "PSGraph", spec.name, "line-mean-epoch", "ok",
                sum(times) / len(times), scale,
                paper_value=PAPER_EPOCH_HOURS, unit="hours",
                wall_seconds=wall,
                extra={"final_loss": losses[-1],
                       "loss_decreased": losses[-1] < losses[0]},
            )
        )
        return rows
    finally:
        ctx.stop()
