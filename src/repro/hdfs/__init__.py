"""Simulated HDFS: in-memory block filesystem with metered IO."""

from repro.hdfs.filesystem import DEFAULT_BLOCK_SIZE, Hdfs, HdfsFile

__all__ = ["DEFAULT_BLOCK_SIZE", "Hdfs", "HdfsFile"]
