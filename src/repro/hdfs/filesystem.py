"""In-memory simulated HDFS with metered IO.

The paper uses HDFS for three things, and so does the reproduction: the
input edge lists live there, the parameter servers checkpoint their model
partitions there (Sec. III-A), and failure recovery reads both back
(Sec. III-B, Table II).

Files are stored as block lists under a namenode-style metadata map.  Every
read/write charges simulated disk seconds to the caller's
:class:`repro.common.simclock.TaskCost` (when one is supplied) and increments
cluster metrics.  Objects are deep-copied through :mod:`pickle` on write so a
checkpoint is a true snapshot, not an alias of live server state.
"""

from __future__ import annotations

import fnmatch
import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List

from repro.common.costs import DEFAULT_COST_MODEL, CostModel
from repro.common.errors import (
    FileAlreadyExistsError,
    FileNotFoundOnHdfsError,
    HdfsError,
)
from repro.common.metrics import (
    HDFS_BYTES_READ,
    HDFS_BYTES_WRITTEN,
    MetricsRegistry,
)
from repro.common.simclock import TaskCost
from repro.common.sizeof import sizeof


def _task_span(name: str, cost: TaskCost, tags: dict):
    """In-task trace scope; imported lazily to avoid an import cycle with
    the dataflow package (which itself imports this module)."""
    from repro.dataflow.taskctx import task_span

    return task_span(name, cost, tags)

#: Default HDFS block size.  The absolute value only affects block counts in
#: metadata; IO cost is charged on byte totals.
DEFAULT_BLOCK_SIZE = 8 * 1024 * 1024


def _normalize(path: str) -> str:
    """Normalize an HDFS path: single leading slash, no trailing slash."""
    if not path:
        raise HdfsError("empty HDFS path")
    path = "/" + path.strip("/")
    return path


@dataclass
class HdfsFile:
    """Namenode metadata plus payload for one file."""

    path: str
    payload: bytes
    logical_bytes: int
    replication: int
    block_size: int

    @property
    def num_blocks(self) -> int:
        """Number of blocks the file occupies."""
        return max(1, -(-self.logical_bytes // self.block_size))


@dataclass
class Hdfs:
    """The simulated filesystem: a namenode map of path -> :class:`HdfsFile`.

    Attributes:
        cost_model: hardware constants used to charge IO time.
        metrics: cluster metrics registry (optional).
        replication: default replication factor; writes charge the disk
            pipeline ``replication`` times, reads charge it once.
    """

    cost_model: CostModel = DEFAULT_COST_MODEL
    metrics: MetricsRegistry | None = None
    replication: int = 3
    block_size: int = DEFAULT_BLOCK_SIZE
    _files: Dict[str, HdfsFile] = field(default_factory=dict)

    # -- write ------------------------------------------------------------

    def write_bytes(self, path: str, data: bytes, *, overwrite: bool = False,
                    cost: TaskCost | None = None) -> HdfsFile:
        """Write raw bytes to ``path``."""
        return self._store(path, bytes(data), len(data), overwrite, cost)

    def write_text(self, path: str, text: str | Iterable[str], *,
                   overwrite: bool = False,
                   cost: TaskCost | None = None) -> HdfsFile:
        """Write a text file; an iterable of lines is joined with newlines."""
        if not isinstance(text, str):
            text = "\n".join(text)
            if text:
                text += "\n"
        data = text.encode("utf-8")
        return self._store(path, data, len(data), overwrite, cost)

    def write_pickle(self, path: str, obj: Any, *, overwrite: bool = False,
                     cost: TaskCost | None = None) -> HdfsFile:
        """Snapshot ``obj`` (deep copy via pickle); charges its logical size."""
        data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        return self._store(path, data, max(len(data), sizeof(obj)),
                           overwrite, cost)

    def _store(self, path: str, payload: bytes, logical: int,
               overwrite: bool, cost: TaskCost | None) -> HdfsFile:
        path = _normalize(path)
        if not overwrite and path in self._files:
            raise FileAlreadyExistsError(path)
        f = HdfsFile(path, payload, logical, self.replication, self.block_size)
        self._files[path] = f
        written = logical * self.replication
        if cost is not None:
            # In-task writes land on the running task's trace row; writes
            # from clock-owning callers (PS checkpoints) are traced there.
            with _task_span("hdfs.write", cost,
                            {"path": path, "bytes": written}):
                cost.disk_s += self.cost_model.disk_write_time(written)
                cost.cpu_s += self.cost_model.serialization_time(logical)
        if self.metrics is not None:
            self.metrics.inc(HDFS_BYTES_WRITTEN, written)
        return f

    # -- read -------------------------------------------------------------

    def read_bytes(self, path: str, *, cost: TaskCost | None = None) -> bytes:
        """Read raw bytes from ``path``."""
        f = self._lookup(path)
        self._charge_read(f, cost)
        return f.payload

    def read_text(self, path: str, *, cost: TaskCost | None = None) -> str:
        """Read a UTF-8 text file."""
        return self.read_bytes(path, cost=cost).decode("utf-8")

    def read_lines(self, path: str, *,
                   cost: TaskCost | None = None) -> List[str]:
        """Read a text file and split into non-empty lines."""
        text = self.read_text(path, cost=cost)
        return [line for line in text.split("\n") if line]

    def read_pickle(self, path: str, *, cost: TaskCost | None = None) -> Any:
        """Load a pickled snapshot written by :meth:`write_pickle`."""
        f = self._lookup(path)
        self._charge_read(f, cost)
        return pickle.loads(f.payload)

    def _charge_read(self, f: HdfsFile, cost: TaskCost | None) -> None:
        if cost is not None:
            with _task_span("hdfs.read", cost,
                            {"path": f.path, "bytes": f.logical_bytes}):
                cost.disk_s += self.cost_model.disk_read_time(f.logical_bytes)
                cost.cpu_s += self.cost_model.serialization_time(
                    f.logical_bytes
                )
        if self.metrics is not None:
            self.metrics.inc(HDFS_BYTES_READ, f.logical_bytes)

    def _lookup(self, path: str) -> HdfsFile:
        path = _normalize(path)
        f = self._files.get(path)
        if f is None:
            raise FileNotFoundOnHdfsError(path)
        return f

    # -- namespace --------------------------------------------------------

    def exists(self, path: str) -> bool:
        """True if ``path`` names an existing file."""
        return _normalize(path) in self._files

    def delete(self, path: str, *, recursive: bool = False) -> int:
        """Delete a file, or a whole subtree with ``recursive=True``.

        Returns:
            Number of files removed.
        """
        path = _normalize(path)
        if not recursive:
            if self._files.pop(path, None) is None:
                raise FileNotFoundOnHdfsError(path)
            return 1
        prefix = path + "/"
        doomed = [p for p in self._files if p == path or p.startswith(prefix)]
        for p in doomed:
            del self._files[p]
        return len(doomed)

    def listdir(self, path: str) -> List[str]:
        """List files under directory ``path``, sorted."""
        prefix = _normalize(path) + "/"
        return sorted(p for p in self._files if p.startswith(prefix))

    def glob(self, pattern: str) -> List[str]:
        """Shell-style glob over all file paths, sorted."""
        pattern = _normalize(pattern)
        return sorted(p for p in self._files if fnmatch.fnmatch(p, pattern))

    def file_size(self, path: str) -> int:
        """Logical size of a file in bytes."""
        return self._lookup(path).logical_bytes

    def total_bytes(self) -> int:
        """Sum of logical sizes of every stored file (pre-replication)."""
        return sum(f.logical_bytes for f in self._files.values())
