#!/usr/bin/env python
"""Streaming mutations with incremental recompute (the Fig. 3 ecosystem).

Mutations — edge adds *and* removals, plus the occasional vertex
takedown — arrive on a Kafka-style topic.  The consumer stages each
poll, lands it on HDFS for the batch jobs, and hands the typed batch to
the window engine, which repairs the PS-resident graph and refreshes
PageRank and connected components *incrementally*: every window ends
with ranks that match a from-scratch batch recompute, at a small
fraction of its sim-clock cost.

Run:
    python examples/streaming_pipeline.py
"""

import numpy as np

from repro.common.config import ClusterConfig, MB
from repro.core.context import PSGraphContext
from repro.datasets.generators import powerlaw_graph
from repro.ingest.kafka import EdgeStreamConsumer, KafkaTopic
from repro.streaming import (
    IncrementalComponents,
    IncrementalPageRank,
    StreamingEngine,
    StreamingGraph,
)

NUM_VERTICES = 2000
BASE_EDGES = 15000


def main() -> None:
    cluster = ClusterConfig(
        num_executors=4, executor_mem_bytes=256 * MB,
        num_servers=2, server_mem_bytes=256 * MB,
    )
    with PSGraphContext(cluster, app_name="streaming") as ctx:
        topic = KafkaTopic("friend-events", num_partitions=4)
        graph = StreamingGraph(ctx.ps, NUM_VERTICES, metrics=ctx.metrics)
        consumer = EdgeStreamConsumer(
            topic, ctx.hdfs, landing_dir="/stream/edges",
            metrics=ctx.metrics,
        )
        engine = StreamingEngine(graph, consumer, measure_full=True)
        pagerank = engine.register(
            "pagerank", IncrementalPageRank(graph, tol=1e-8))
        engine.register("components", IncrementalComponents(graph))

        # Wave 0: the base graph arrives and the algorithms bootstrap.
        src, dst = powerlaw_graph(NUM_VERTICES, BASE_EDGES, seed=41)
        topic.produce(src, dst)
        engine.run_window()
        engine.bootstrap()
        engine.reports.clear()
        print(f"bootstrap: {graph.num_edges} live edges, "
              f"{len(graph.present_vertices())} present vertices")

        # Waves of churn: friendships form AND dissolve, one account
        # is taken down, and each window re-freshens the ranks.
        rng = np.random.default_rng(43)
        for wave in range(3):
            a_s = rng.integers(0, NUM_VERTICES, 40)
            a_d = (a_s + 1 + rng.integers(0, NUM_VERTICES - 1, 40)
                   ) % NUM_VERTICES
            topic.produce(a_s, a_d)
            ridx = rng.choice(len(src), size=25, replace=False)
            topic.produce_removals(src[ridx], dst[ridx])
            if wave == 1:
                present = graph.present_vertices()
                doomed = present[int(rng.integers(0, len(present)))]
                topic.produce_vertex_removals(
                    np.asarray([doomed], dtype=np.int64))
            report = engine.run_window()
            ids, ranks = pagerank.ranks()
            top = ids[np.argsort(ranks)[::-1][:3]]
            print(f"wave {wave}: +{report.edges_added} "
                  f"-{report.edges_removed} edges, "
                  f"{report.vertices_dropped} drops, "
                  f"inc={report.cost_incremental_s:.4f}s vs "
                  f"full={report.cost_full_s:.4f}s "
                  f"(ratio {report.cost_ratio:.3f}), "
                  f"top ranks: {top.tolist()}")

        summary = engine.summary()
        print(f"summary: {int(summary['windows'])} windows, "
              f"incremental {summary['cost_incremental_s']:.4f}s vs "
              f"full recompute {summary['cost_full_s']:.4f}s "
              f"(ratio {summary['cost_ratio']:.3f})")
        print(f"total ingested records: "
              f"{int(ctx.metrics.get('ingest.records'))}")
        print(f"simulated job time: {ctx.sim_time():.3f} s")


if __name__ == "__main__":
    main()
