#!/usr/bin/env python
"""Streaming ingestion into the PSGraph pipeline (the Fig. 3 ecosystem).

Edges arrive on a Kafka-style topic; a consumer lands them on HDFS for the
batch jobs *and* merges them incrementally into a PS neighbor table, so an
online model stays fresh between batch runs — the pipeline capability the
paper's introduction credits for Spark's hold on Tencent's workloads.

Run:
    python examples/streaming_pipeline.py
"""

import numpy as np

from repro.common.config import ClusterConfig, MB
from repro.core.algorithms import PageRank
from repro.core.context import PSGraphContext
from repro.core.runner import GraphRunner
from repro.datasets.generators import powerlaw_graph
from repro.ingest.kafka import EdgeStreamConsumer, KafkaTopic


def main() -> None:
    cluster = ClusterConfig(
        num_executors=4, executor_mem_bytes=256 * MB,
        num_servers=2, server_mem_bytes=256 * MB,
    )
    with PSGraphContext(cluster, app_name="streaming") as ctx:
        topic = KafkaTopic("friend-events", num_partitions=4)
        online_table = ctx.ps.create_neighbor_table("online-adj", 2000)
        consumer = EdgeStreamConsumer(
            topic, ctx.hdfs, landing_dir="/stream/edges",
            table=online_table, metrics=ctx.metrics,
        )

        # Three waves of events arrive.
        src, dst = powerlaw_graph(2000, 15000, seed=41)
        for wave in range(3):
            sl = slice(wave * 5000, (wave + 1) * 5000)
            topic.produce(src[sl], dst[sl])
            consumed = consumer.drain()
            degree_of_zero = online_table.degrees(np.array([0]))[0]
            print(f"wave {wave}: consumed {consumed} events, "
                  f"online degree(vertex 0) = {degree_of_zero}")

        # The landed history feeds an ordinary batch job, no export step.
        result = GraphRunner(ctx).run(
            PageRank(max_iterations=10), "/stream/edges"
        )
        top = result.output.order_by("rank", ascending=False).limit(3)
        print("batch PageRank over the streamed history — top 3:")
        top.show()
        print(f"total ingested records: "
              f"{int(ctx.metrics.get('ingest.records'))}")
        print(f"simulated job time: {ctx.sim_time():.3f} s")


if __name__ == "__main__":
    main()
