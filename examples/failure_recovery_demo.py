#!/usr/bin/env python
"""Failure recovery walkthrough (the machinery behind Table II).

Kills an executor and then a parameter server in the middle of a
common-neighbor job and shows the system recovering: Spark recomputes the
lost partitions from lineage; the PS master restarts the server and
reloads its neighbor-table partitions from the HDFS checkpoint.

Run:
    python examples/failure_recovery_demo.py
"""

from repro.common.config import ClusterConfig, MB
from repro.common.metrics import CONTAINERS_RESTARTED
from repro.core.algorithms import CommonNeighbor
from repro.core.context import PSGraphContext
from repro.core.runner import GraphRunner
from repro.datasets.generators import powerlaw_graph
from repro.datasets.tencent import write_edges


def main() -> None:
    cluster = ClusterConfig(
        num_executors=6, executor_mem_bytes=256 * MB,
        num_servers=3, server_mem_bytes=256 * MB,
    )
    with PSGraphContext(cluster, app_name="recovery-demo") as ctx:
        src, dst = powerlaw_graph(3000, 30000, seed=17)
        write_edges(ctx.hdfs, "/input/edges", src, dst, num_files=6)
        runner = GraphRunner(ctx)

        # Build + checkpoint the PS neighbor tables, then start scoring.
        result = runner.run(
            CommonNeighbor(batch_size=2048, checkpoint=True),
            "/input/edges",
        )
        print("neighbor tables built and checkpointed to HDFS "
              f"({len(ctx.hdfs.listdir('/ps-checkpoints/cn-neighbors'))} "
              "partition files)")

        state = {"count": 0}

        def chaos(_stage, _partition, kind):
            if kind != "result":
                return
            state["count"] += 1
            if state["count"] == 2:
                print("  !! killing executor-2 mid-job")
                ctx.spark.kill_executor(2, reason="demo")
            if state["count"] == 4:
                print("  !! killing ps-server-1 mid-job")
                ctx.ps.kill_server(1)

        ctx.spark.add_task_hook(chaos)
        scored = result.output.count()
        ctx.spark.remove_task_hook(chaos)
        # The master's periodic health check would also catch a server
        # that died after the last pull; run one sweep explicitly.
        ctx.ps.recover()
        print(f"job finished: {scored} edges scored despite both failures")
        print(f"containers restarted: "
              f"{int(ctx.metrics.get(CONTAINERS_RESTARTED))}")
        print(f"PS master recoveries: {ctx.ps.master.recoveries}")
        print(f"simulated job time: {ctx.sim_time():.3f} s")

        # Verify against a failure-free run.
        clean = runner.run(CommonNeighbor(batch_size=2048), "/input/edges")
        assert sorted(result.output.collect_tuples()) == \
            sorted(clean.output.collect_tuples())
        print("results verified identical to a failure-free run")


if __name__ == "__main__":
    main()
