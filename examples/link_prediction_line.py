#!/usr/bin/env python
"""Link prediction with LINE embeddings (+ common neighbor baseline).

Trains LINE first-order embeddings on 90% of a community graph's edges and
scores the held-out 10% against random pairs — the "prediction of new edges
based on vertex similarities" use case of Sec. II-B.

Run:
    python examples/link_prediction_line.py
"""

import numpy as np

from repro.common.config import ClusterConfig, MB
from repro.common.rng import make_rng
from repro.core.algorithms import CommonNeighbor, Line, link_prediction_score
from repro.core.context import PSGraphContext
from repro.core.ops import edges_from_arrays
from repro.datasets.generators import community_graph


def main() -> None:
    cluster = ClusterConfig(
        num_executors=8, executor_mem_bytes=512 * MB,
        num_servers=4, server_mem_bytes=512 * MB,
    )
    src, dst, _ = community_graph(
        1500, 6, avg_degree=14, mixing=0.05, seed=21
    )
    rng = make_rng(3)
    order = rng.permutation(len(src))
    held = order[: len(src) // 10]
    train = order[len(src) // 10:]

    with PSGraphContext(cluster, app_name="link-prediction") as ctx:
        edges = edges_from_arrays(ctx.spark, src[train], dst[train])
        result = Line(
            dim=32, order=1, epochs=6, lr=0.15, negative=5,
            batch_size=1024,
        ).transform(ctx, edges)
        print("LINE training loss per epoch:",
              [f"{l:.4f}" for l in result.stats["epoch_losses"]])

        emb = result.stats["embedding"]
        n = int(max(src.max(), dst.max())) + 1
        vectors = emb.pull_rows(np.arange(n))
        auc = link_prediction_score(
            vectors, src[held], dst[held], make_rng(5)
        )
        print(f"held-out link prediction score (LINE): {auc:.3f} "
              f"(0.5 = chance)")

        # Baseline: common-neighbor counts on the same held-out pairs.
        cn = CommonNeighbor().transform(
            ctx, edges_from_arrays(ctx.spark, src[held], dst[held])
        )
        counts = [r["common"] for r in cn.output.collect()]
        print(f"common-neighbor baseline: mean overlap on held-out edges "
              f"= {np.mean(counts):.2f}")
        print(f"simulated job time: {ctx.sim_time():.3f} s")


if __name__ == "__main__":
    main()
