#!/usr/bin/env python
"""Supervised vertex classification with GraphSage (the WeChat Pay shape).

Table I's application: classify vertices (e.g. risky accounts) from
features plus graph structure.  Trains PSGraph's GraphSage — features,
neighbor tables and weights on the parameter server, autograd in the
embedded torchlite runtime — and reports accuracy against a
features-only logistic baseline to show the graph helps.

Run:
    python examples/fraud_detection_graphsage.py
"""

import numpy as np

from repro.common.config import ClusterConfig, MB
from repro.core.algorithms import GraphSage
from repro.core.context import PSGraphContext
from repro.core.ops import edges_from_arrays
from repro.datasets.generators import community_graph, vertex_features
from repro.torchlite import (
    AdamOptimizer,
    Linear,
    Tensor,
    accuracy,
    cross_entropy,
)


def features_only_baseline(feats, labels, train_idx, test_idx) -> float:
    """Logistic regression on raw features (no graph)."""
    model = Linear(feats.shape[1], int(labels.max()) + 1,
                   rng=np.random.default_rng(0))
    opt = AdamOptimizer(model.parameters(), lr=0.05)
    x, y = feats[train_idx].astype(np.float64), labels[train_idx]
    for _ in range(150):
        opt.zero_grad()
        loss = cross_entropy(model(Tensor(x)), y)
        loss.backward()
        opt.step()
    logits = model(Tensor(feats[test_idx].astype(np.float64))).data
    return accuracy(logits, labels[test_idx])


def main() -> None:
    src, dst, comm = community_graph(
        3000, 12, avg_degree=10, mixing=0.15, seed=31
    )
    feats, labels = vertex_features(comm, 24, 4, noise=3.0, seed=32)

    cluster = ClusterConfig(
        num_executors=6, executor_mem_bytes=512 * MB,
        num_servers=4, server_mem_bytes=512 * MB,
    )
    with PSGraphContext(cluster, app_name="fraud-detection") as ctx:
        edges = edges_from_arrays(ctx.spark, src, dst)
        algo = GraphSage(
            feats, labels, hidden=32, epochs=4, batch_size=256, lr=0.03,
        )
        result = algo.transform(ctx, edges)
        print("GraphSage on PSGraph:")
        print(f"  train/test nodes : {result.stats['num_train']}/"
              f"{result.stats['num_test']}")
        print("  loss per epoch   :",
              [f"{l:.3f}" for l in result.stats["epoch_losses"]])
        print(f"  test accuracy    : {result.stats['accuracy']:.3f}")

        rng = np.random.default_rng(9)
        ids = rng.permutation(3000)
        cut = int(0.7 * 3000)
        base = features_only_baseline(feats, labels, ids[:cut], ids[cut:])
        print(f"features-only baseline accuracy: {base:.3f} "
              f"(the graph adds "
              f"{100 * (result.stats['accuracy'] - base):.1f} points)")
        print(f"simulated job time: {ctx.sim_time():.3f} s")


if __name__ == "__main__":
    main()
