#!/usr/bin/env python
"""Community detection on a social graph: fast unfolding + label propagation.

The motivating WeChat use case: find densely connected friend groups.
Runs both PS-backed community algorithms on a planted-community graph and
scores them against the ground truth.

Run:
    python examples/social_community_detection.py
"""

import numpy as np

from repro.common.config import ClusterConfig, MB
from repro.core.algorithms import FastUnfolding, LabelPropagation
from repro.core.context import PSGraphContext
from repro.core.ops import edges_from_arrays
from repro.datasets.generators import community_graph


def purity(assignment: dict, truth: np.ndarray) -> float:
    """Mean, over detected communities, of their majority true label."""
    groups: dict = {}
    for v, c in assignment.items():
        groups.setdefault(c, []).append(truth[v])
    total = sum(len(g) for g in groups.values())
    hit = sum(
        int(np.bincount(np.asarray(g)).max()) for g in groups.values()
    )
    return hit / total


def main() -> None:
    cluster = ClusterConfig(
        num_executors=8, executor_mem_bytes=256 * MB,
        num_servers=4, server_mem_bytes=256 * MB,
    )
    src, dst, truth = community_graph(
        2000, 8, avg_degree=12, mixing=0.08, seed=11
    )
    with PSGraphContext(cluster, app_name="communities") as ctx:
        edges = edges_from_arrays(ctx.spark, src, dst)

        fu = FastUnfolding(num_passes=3).transform(ctx, edges)
        fu_map = {r["vertex"]: r["community"]
                  for r in fu.output.collect()}
        print("fast unfolding:")
        print(f"  modularity     : {fu.stats['modularity']:.3f}")
        print(f"  communities    : {fu.stats['num_communities']}")
        print(f"  purity vs truth: {purity(fu_map, truth):.3f}")

        lpa = LabelPropagation(max_iterations=10).transform(ctx, edges)
        lpa_map = {r["vertex"]: r["label"]
                   for r in lpa.output.collect()}
        print("label propagation:")
        print(f"  labels         : {lpa.stats['num_labels']}")
        print(f"  purity vs truth: {purity(lpa_map, truth):.3f}")
        print(f"simulated job time: {ctx.sim_time():.3f} s")


if __name__ == "__main__":
    main()
