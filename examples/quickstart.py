#!/usr/bin/env python
"""Quickstart: PageRank on PSGraph, end to end.

Mirrors Listing 1 of the paper: create the Spark + PS contexts, load an
edge list from (simulated) HDFS, run an algorithm, save the result — and
record a sim-time trace of the whole run (see docs/observability.md).

Run:
    python examples/quickstart.py

Then open ``quickstart-trace.json`` in chrome://tracing or
https://ui.perfetto.dev to see the simulated cluster schedule.
"""

from repro.common.config import ClusterConfig, MB
from repro.core.algorithms import PageRank
from repro.core.context import PSGraphContext
from repro.core.runner import GraphRunner
from repro.datasets.generators import powerlaw_graph
from repro.datasets.tencent import write_edges
from repro.obs import Tracer, timeline_report, write_chrome_trace


def main() -> None:
    # A small "cluster": 8 executors and 4 parameter servers.
    cluster = ClusterConfig(
        num_executors=8, executor_mem_bytes=256 * MB,
        num_servers=4, server_mem_bytes=256 * MB,
    )
    tracer = Tracer()
    with PSGraphContext(cluster, app_name="quickstart",
                        tracer=tracer) as ctx:
        # Generate a power-law graph and stage it on HDFS as text.
        src, dst = powerlaw_graph(5000, 60000, seed=7)
        write_edges(ctx.hdfs, "/input/edges", src, dst, num_files=8)

        # Listing 1: load -> transform -> save.
        runner = GraphRunner(ctx)
        result = runner.run(
            PageRank(max_iterations=30, tol=1e-6),
            "/input/edges", "/output/ranks",
        )

        print(f"converged after {result.iterations} iterations "
              f"(residual {result.stats['residual']:.2e})")
        top = result.output.order_by("rank", ascending=False).limit(5)
        print("top-5 vertices by rank:")
        top.show()
        print(f"simulated job time: {ctx.sim_time():.3f} s")
        print(f"output files: {len(ctx.hdfs.listdir('/output/ranks'))} "
              f"partitions on HDFS")

        # Observability: the sim-time schedule as a Chrome trace plus a
        # per-stage timeline on stdout.
        n = write_chrome_trace("quickstart-trace.json", tracer)
        print(f"wrote {n} trace events to quickstart-trace.json")
        print()
        print(timeline_report(tracer, sim_time_s=ctx.sim_time()))


if __name__ == "__main__":
    main()
