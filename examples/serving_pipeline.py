#!/usr/bin/env python
"""Online serving walkthrough: train -> snapshot -> serve under chaos.

Trains two models on one simulated cluster — PageRank scores and LINE
embeddings — snapshots them on the parameter servers, then replays a
seeded Zipfian three-tenant workload through the admission-controlled
serving plane while a chaos schedule kills one serving shard
mid-traffic.  Watch the ``serve-latency`` SLO fire during the outage,
the hot-key cache absorb the skewed head, and the drop ledger account
for every request the outage cost.

Run:
    python examples/serving_pipeline.py
"""

import numpy as np

from repro.chaos import ChaosEngine, FaultSchedule, FaultSpec
from repro.common.config import MB, ClusterConfig
from repro.core.algorithms import Line, PageRank
from repro.core.context import PSGraphContext
from repro.core.runner import GraphRunner
from repro.datasets.generators import powerlaw_graph
from repro.datasets.tencent import write_edges
from repro.obs import TelemetryCollector, Tracer
from repro.obs.slo import default_slos
from repro.serve import RequestGenerator, ServingPlane, TenantSpec
from repro.serve.plane import default_serve_slos

SEED = 11


def main() -> None:
    cluster = ClusterConfig(
        num_executors=4, executor_mem_bytes=512 * MB,
        num_servers=2, server_mem_bytes=512 * MB,
    )
    tracer = Tracer()
    with PSGraphContext(cluster, app_name="serving-pipeline",
                        tracer=tracer) as ctx:
        # ---- train: two models on the same graph ----------------------
        src, dst = powerlaw_graph(1500, 9000, seed=SEED)
        write_edges(ctx.hdfs, "/input/edges", src, dst, num_files=4)
        runner = GraphRunner(ctx)
        ranks = runner.run(PageRank(max_iterations=10), "/input/edges")
        embeddings = runner.run(
            Line(dim=8, epochs=1, seed=SEED), "/input/edges")
        emb = embeddings.stats["embedding"]
        print(f"trained pagerank ({ranks.iterations} iters) and line "
              f"({emb.name}, dim 8) in {ctx.sim_time():.3f} sim-s")

        # ---- snapshot: publish ranks, checkpoint everything -----------
        rows = ranks.output.rdd.collect()
        keys = np.array([r[0] for r in rows], dtype=np.int64)
        key_space = int(keys.max()) + 1
        vector = ctx.ps.create_vector("serve.ranks", key_space)
        vector.set(keys, np.array([r[1] for r in rows]))
        ctx.ps.checkpoint_all()
        print(f"snapshotted serve.ranks[{key_space}] and {emb.name} "
              "to HDFS checkpoints")

        # ---- serve: three tenants, two models, one dead shard ---------
        collector = TelemetryCollector(
            ctx.metrics, tracer,
            slos=default_slos() + default_serve_slos(),
        ).attach(ctx.spark)
        tenants = [
            TenantSpec(name="feeds", model="serve.ranks", weight=3.0,
                       priority=2, deadline_s=5.0),
            TenantSpec(name="similar-items", model=emb.name, weight=2.0,
                       priority=1, deadline_s=8.0),
            TenantSpec(name="batch-reco", model="serve.ranks", weight=1.0,
                       priority=1, deadline_s=10.0, rate_limit=200.0,
                       burst=32),
        ]
        requests = RequestGenerator(
            tenants, key_space=key_space, zipf_s=1.1, rate=1500.0,
            seed=SEED,
        ).generate(30_000, start_s=ctx.sim_time())
        engine = ChaosEngine(FaultSchedule([
            FaultSpec("kill_server", index=0, after_tasks=60,
                      task_kind="serve"),
        ], seed=SEED), ctx.spark, ctx.ps).attach()
        engine.bind_telemetry(collector)
        plane = ServingPlane(ctx.ps, tenants,
                             cache_capacity=key_space // 10)
        try:
            report = plane.run(requests)
        finally:
            engine.detach()
            collector.finalize(ctx.sim_time())
            collector.detach()

        # ---- report ---------------------------------------------------
        print(engine.describe())
        print(f"served {report.served}/{report.offered} requests, "
              f"p50 {report.p50_s * 1e3:.1f} ms / "
              f"p99 {report.p99_s * 1e3:.1f} ms (sim)")
        if report.degraded_p99_s is not None:
            print(f"degraded-mode p99 {report.degraded_p99_s:.2f} s over "
                  f"{report.recoveries} recovery")
        print(f"hot-key cache hit rate {report.cache_hit_rate * 100:.1f}%")
        for reason, count in sorted(report.drops.items()):
            print(f"  dropped {count} ({reason})")
        assert report.conserved(), "request conservation violated"
        for alert in collector.alerts:
            print(f"alert {alert.slo}: fired {alert.fired_at_s:.2f} sim-s")


if __name__ == "__main__":
    main()
