"""Table I benchmark: GraphSage — PSGraph vs Euler on DS3.

Asserts the paper's shape: Euler's preprocessing is hours where PSGraph's
is minutes; Euler's epochs are an order of magnitude slower; the two
systems reach comparable accuracy.
"""

from repro.experiments.harness import format_rows
from repro.experiments.table1 import run_table1


def test_bench_table1(once, capsys):
    rows = once(run_table1)
    with capsys.disabled():
        print()
        print(format_rows(rows))
    by_key = {(r.system, r.algorithm): r for r in rows}
    prep_euler = by_key[("Euler", "graphsage-preprocess")].projected
    prep_ps = by_key[("PSGraph", "graphsage-preprocess")].projected
    epoch_euler = by_key[("Euler", "graphsage-epoch")].projected
    epoch_ps = by_key[("PSGraph", "graphsage-epoch")].projected
    acc_euler = by_key[("Euler", "graphsage-accuracy")].extra["accuracy_pct"]
    acc_ps = by_key[("PSGraph", "graphsage-accuracy")].extra["accuracy_pct"]
    # Preprocessing: hours (Euler) vs minutes (PSGraph); paper 8 h vs 12 min.
    assert prep_euler > 10 * prep_ps
    assert prep_euler > 1.0  # hours
    # Epochs: ~30x in the paper; accept an order of magnitude either way.
    assert epoch_euler > 10 * epoch_ps
    # Comparable accuracy, both well above the 20% chance level.
    assert abs(acc_euler - acc_ps) < 10.0
    assert min(acc_euler, acc_ps) > 60.0
