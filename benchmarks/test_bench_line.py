"""Sec. V-B2 benchmark: LINE epochs on DS1 (PSGraph only, as in the paper)."""

from repro.experiments.harness import format_rows
from repro.experiments.line_epochs import PAPER_EPOCH_HOURS, run_line_epochs


def test_bench_line_epochs(once, capsys):
    rows = once(run_line_epochs)
    with capsys.disabled():
        print()
        print(format_rows(rows))
    mean_row = [r for r in rows if r.algorithm == "line-mean-epoch"][0]
    # Projected per-epoch hours within ~5x of the paper's 40 minutes.
    assert mean_row.projected is not None
    assert PAPER_EPOCH_HOURS / 5 < mean_row.projected < PAPER_EPOCH_HOURS * 5
    # Training makes progress.
    assert mean_row.extra["loss_decreased"]
