"""Table II benchmark: failure recovery on common neighbor + DS1.

Asserts the paper's shape: both failure runs finish correctly with a
modest overhead over the failure-free run, and the PS-server failure costs
at least as much as the executor failure (36 vs 35 minutes in the paper).
"""

from repro.experiments.harness import format_rows
from repro.experiments.table2 import run_table2


def test_bench_table2(once, capsys):
    rows = once(run_table2)
    with capsys.disabled():
        print()
        print(format_rows(rows))
    by_scenario = {r.algorithm.split("/")[-1]: r for r in rows}
    base = by_scenario["none"].projected
    t_exec = by_scenario["executor"].projected
    t_server = by_scenario["server"].projected
    # All runs produced the full result set.
    counts = {r.extra["edges_scored"] for r in rows}
    assert len(counts) == 1
    # Failures recovered (containers actually restarted).
    assert by_scenario["executor"].extra["recoveries"] == 1
    assert by_scenario["server"].extra["recoveries"] == 1
    # Modest overhead, ordered as in the paper.
    assert base < t_exec <= t_server
    assert t_server < base * 1.6  # recovery is quick, not a rerun
