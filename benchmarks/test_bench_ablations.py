"""Ablation benchmarks: the design choices DESIGN.md calls out."""

from repro.experiments.ablations import (
    ablation_delta_pagerank,
    ablation_line_psfunc,
    ablation_partitioners,
    ablation_sync_modes,
)
from repro.experiments.report import format_dicts


def test_bench_ablation_delta_pagerank(once, capsys):
    rows = once(ablation_delta_pagerank)
    with capsys.disabled():
        print()
        print(format_dicts(rows, "delta vs full PageRank"))
    by = {r["variant"]: r for r in rows}
    # Thresholded deltas move materially fewer bytes...
    assert (by["delta-threshold"]["push_bytes"]
            < 0.9 * by["delta"]["push_bytes"])
    # ...at a bounded accuracy cost.
    ref = by["delta"]["rank_checksum"]
    assert abs(by["delta-threshold"]["rank_checksum"] - ref) < 0.05 * ref


def test_bench_ablation_line_psfunc(once, capsys):
    rows = once(ablation_line_psfunc)
    with capsys.disabled():
        print()
        print(format_dicts(rows, "LINE: psFunc on PS vs pull embeddings"))
    by = {r["variant"]: r for r in rows}
    # Server-side dots/updates slash the network volume (Sec. IV-D).
    assert (by["psfunc-on-ps"]["pull_bytes"]
            < 0.2 * by["pull-embeddings"]["pull_bytes"])
    assert by["psfunc-on-ps"]["push_bytes"] == 0


def test_bench_ablation_sync(once, capsys):
    rows = once(ablation_sync_modes)
    with capsys.disabled():
        print()
        print(format_dicts(rows, "BSP vs ASP with a straggling server"))
    by = {r["variant"]: r for r in rows}
    assert by["asp"]["sim_seconds"] < by["bsp"]["sim_seconds"]


def test_bench_ablation_partitioners(once, capsys):
    rows = once(ablation_partitioners)
    with capsys.disabled():
        print()
        print(format_dicts(rows, "partitioner load balance"))
    by = {r["variant"]: r for r in rows}
    # Hash balances best; hash-range beats plain range on skewed ids.
    assert by["hash"]["imbalance"] < by["hash-range"]["imbalance"]
    assert by["hash-range"]["imbalance"] < by["range"]["imbalance"]


def test_bench_scaling_servers(once, capsys):
    from repro.experiments.scaling import scaling_servers

    rows = once(scaling_servers)
    with capsys.disabled():
        print()
        print(format_dicts(rows, "runtime vs PS servers"))
    # More servers -> less congestion -> monotonically faster (or equal).
    times = [r["sim_seconds"] for r in rows]
    assert times[0] > times[-1]
    assert all(a >= b * 0.95 for a, b in zip(times, times[1:]))


def test_bench_scaling_executors(once, capsys):
    from repro.experiments.scaling import scaling_executors

    rows = once(scaling_executors)
    with capsys.disabled():
        print()
        print(format_dicts(rows, "runtime vs executors"))
    times = [r["sim_seconds"] for r in rows]
    # Near-linear early: 2x executors between the first two points should
    # cut the time materially.
    assert times[1] < times[0] * 0.7


def test_bench_resource_efficiency(once, capsys):
    """Sec. V-B1: 'PSGraph only needs half of the resources consumed by
    GraphX' — GraphX's OOM frontier sits above PSGraph's allocation."""
    from repro.experiments.resources import run_resource_efficiency

    rows = once(run_resource_efficiency)
    with capsys.disabled():
        print()
        print(format_dicts(
            [{k: (v if v is not None else "OOM") for k, v in r.items()}
             for r in rows],
            "resource efficiency (PageRank DS1)",
        ))
    ps = [r for r in rows if r["system"] == "PSGraph"][0]
    gx = [r for r in rows if r["system"] == "GraphX"]
    assert ps["status"] == "ok"
    # GraphX OOMs at some grant at or above PSGraph's total memory...
    oom_totals = [r["total_memory_gb"] for r in gx if r["status"] == "OOM"]
    assert oom_totals and max(oom_totals) >= ps["total_memory_gb"]
    # ...and even where GraphX completes, PSGraph is faster on less memory.
    ok_gx = [r for r in gx if r["status"] == "ok"]
    assert ok_gx
    assert all(r["total_memory_gb"] > ps["total_memory_gb"]
               for r in ok_gx)
    assert all(r["projected_hours"] > ps["projected_hours"]
               for r in ok_gx)
