"""Shared helpers for the benchmark suite.

Each benchmark regenerates one table/figure of the paper through the
simulated cluster and reports the mini-scale wall time via
pytest-benchmark; the *projected* paper-scale numbers are printed so the
bench output can be compared with the paper side by side (shape, not
absolute values).
"""

import pytest


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    return lambda fn: run_once(benchmark, fn)
