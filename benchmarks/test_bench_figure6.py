"""Figure 6 benchmark: PSGraph vs GraphX on traditional graph algorithms.

Regenerates every bar of Fig. 6 and asserts the paper's *shape*: PSGraph
completes everywhere, GraphX completes only where the paper says it does,
and where both complete PSGraph wins by a material factor.
"""

import pytest

from repro.experiments.figure6 import FIG6_CELLS, PAPER_FIG6, run_figure6
from repro.experiments.harness import format_rows, speedup


def _cell(name, ds):
    def run():
        return run_figure6(cells=[(name, ds)])

    return run


@pytest.mark.parametrize("algo,ds", FIG6_CELLS,
                         ids=[f"{a}-{d}" for a, d in FIG6_CELLS])
def test_bench_figure6_cell(once, algo, ds, capsys):
    rows = once(_cell(algo, ds))
    with capsys.disabled():
        print()
        print(format_rows(rows))
    by_system = {r.system: r for r in rows}
    # PSGraph always completes.
    assert by_system["PSGraph"].status == "ok"
    # GraphX's OOM pattern matches the paper exactly.
    paper_gx = PAPER_FIG6[(algo, ds, "GraphX")]
    if paper_gx is None:
        assert by_system["GraphX"].status == "OOM"
    else:
        assert by_system["GraphX"].status == "ok"
        s = speedup(rows, ds, algo)
        assert s is not None and s > 2.0  # PSGraph wins decisively
