"""Smoke tests for the micro-benchmark harness.

These verify structure and the regression-gate logic, not performance —
wall-clock assertions do not belong in a test suite.  Run explicitly with
``pytest benchmarks/micro`` (the tier-1 suite only collects ``tests/``).
"""

import json

from benchmarks.micro.cases import (
    CASES,
    case_pagerank_iter,
    case_reduce_by_key,
    case_shuffle,
)
from benchmarks.micro.runner import check_regression, main

RESULT_KEYS = {"name", "records", "boxed_s", "batched_s", "speedup",
               "records_per_s"}


def test_cases_report_structure():
    for case_fn in (case_shuffle, case_reduce_by_key, case_pagerank_iter):
        result = case_fn(500)
        assert set(result) == RESULT_KEYS
        assert result["records"] == 500
        assert result["boxed_s"] > 0 and result["batched_s"] > 0


def test_registry_names_match_results():
    for name, (fn, quick_n, full_n) in CASES.items():
        assert quick_n <= full_n


def test_check_regression_gate(tmp_path):
    baseline = tmp_path / "base.json"
    baseline.write_text(json.dumps({
        "cases": [{"name": "shuffle", "speedup": 10.0}]
    }))
    ok = [{"name": "shuffle", "speedup": 8.0}]
    bad = [{"name": "shuffle", "speedup": 6.0}]
    unknown = [{"name": "novel", "speedup": 0.1}]
    assert check_regression(ok, baseline, 0.30) == []
    assert len(check_regression(bad, baseline, 0.30)) == 1
    # Cases absent from the baseline never fail the gate.
    assert check_regression(unknown, baseline, 0.30) == []


def test_runner_end_to_end(tmp_path, capsys):
    out = tmp_path / "bench.json"
    rc = main(["--quick", "--case", "shuffle", "--out", str(out)])
    assert rc == 0
    payload = json.loads(out.read_text())
    assert payload["mode"] == "quick"
    assert [c["name"] for c in payload["cases"]] == ["shuffle"]
    # A second run checked against the first passes the gate (rc 0) and a
    # tightened impossible threshold fails it (rc 1).
    rc = main(["--quick", "--case", "shuffle",
               "--out", str(tmp_path / "again.json"),
               "--check", str(out), "--max-regression", "0.99"])
    assert rc == 0
