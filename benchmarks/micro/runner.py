"""Micro-benchmark runner: emits and checks ``BENCH_psgraph.json``.

Usage::

    python benchmarks/micro/runner.py --quick --out BENCH_psgraph.json
    python benchmarks/micro/runner.py --quick --out /tmp/new.json \
        --check BENCH_psgraph.json --max-regression 0.30

The regression check compares per-case *speedups* (batched vs boxed in
the same process), not absolute seconds, so it is robust to the host CI
runner being faster or slower than the machine that produced the
baseline.

``--parallel N`` adds a third leg to the dataflow cases: the batched
pipeline on an N-worker process pool (``repro.dataflow.pool``),
reported as ``parallel_s`` / ``parallel_speedup`` with the host's core
count.  The parallel speedup is gated like the batched one, but only
when the measuring host actually has >= N cores — an undersized host
(e.g. a 1-core container) cannot show multi-core speedup, so there the
numbers are recorded as informational only.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[2]
for p in (str(ROOT / "src"), str(ROOT)):
    if p not in sys.path:
        sys.path.insert(0, p)

from benchmarks.micro.cases import CASES, run_cases  # noqa: E402


def check_regression(results: list, baseline_path: Path,
                     max_regression: float) -> list:
    """Per-case speedup regressions beyond the threshold; empty = pass."""
    baseline = json.loads(baseline_path.read_text())
    base_by_name = {c["name"]: c for c in baseline.get("cases", [])}
    failures = []
    for case in results:
        base = base_by_name.get(case["name"])
        if base is None:
            continue
        floor = base["speedup"] * (1.0 - max_regression)
        if case["speedup"] < floor:
            failures.append(
                f"{case['name']}: speedup {case['speedup']:.2f}x < "
                f"{floor:.2f}x (baseline {base['speedup']:.2f}x "
                f"- {max_regression:.0%} allowance)"
            )
        # The parallel axis is gated only on hosts with enough cores to
        # express it; a 1-core container records it as informational.
        if "parallel_speedup" in case and "parallel_speedup" in base:
            workers = case.get("parallel_workers", 0)
            if case.get("host_cores", 0) >= workers > 0:
                pfloor = base["parallel_speedup"] * (1.0 - max_regression)
                if case["parallel_speedup"] < pfloor:
                    failures.append(
                        f"{case['name']}: parallel speedup "
                        f"{case['parallel_speedup']:.2f}x < {pfloor:.2f}x "
                        f"(baseline {base['parallel_speedup']:.2f}x "
                        f"- {max_regression:.0%} allowance)"
                    )
    return failures


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small record counts (CI smoke mode)")
    parser.add_argument("--out", default=str(ROOT / "BENCH_psgraph.json"),
                        help="where to write the results JSON")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="baseline JSON to compare speedups against")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="tolerated fractional speedup drop (default 0.30)")
    parser.add_argument("--case", action="append", dest="cases",
                        choices=sorted(CASES), default=None,
                        help="run only this case (repeatable)")
    parser.add_argument("--parallel", type=int, default=0, metavar="N",
                        help="also time the batched dataflow cases on an "
                             "N-worker process pool (0 = axis off)")
    parser.add_argument("--merge-metrics", default=None, metavar="BASELINE",
                        help="update only the per-case 'metrics' snapshots "
                             "in BASELINE, keeping its timing numbers "
                             "(the snapshots are simulated counters and "
                             "host-independent; the timings are not)")
    args = parser.parse_args(argv)

    results = run_cases(quick=args.quick, names=args.cases,
                        parallel=args.parallel)

    if args.merge_metrics:
        base_path = Path(args.merge_metrics)
        baseline = json.loads(base_path.read_text())
        by_name = {c["name"]: c for c in results}
        for case in baseline.get("cases", []):
            fresh = by_name.get(case["name"])
            if fresh is not None:
                case["metrics"] = fresh["metrics"]
        base_path.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"merged metrics snapshots into {base_path}")
        return 0
    payload = {
        "bench": "psgraph-columnar-micro",
        "mode": "quick" if args.quick else "full",
        "parallel_workers": args.parallel,
        "host_cores": os.cpu_count() or 1,
        "cases": results,
    }
    out_path = Path(args.out)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")

    width = max(len(c["name"]) for c in results)
    for c in results:
        line = (f"{c['name']:{width}s}  {c['records']:>8,} rec  "
                f"boxed {c['boxed_s']:8.3f}s  "
                f"batched {c['batched_s']:8.3f}s  "
                f"{c['speedup']:6.2f}x  {c['records_per_s']:>12,} rec/s")
        if "parallel_s" in c:
            line += (f"  pool[{c['parallel_workers']}] "
                     f"{c['parallel_s']:8.3f}s "
                     f"{c['parallel_speedup']:5.2f}x")
        print(line)
    print(f"wrote {out_path}")

    if args.check:
        failures = check_regression(results, Path(args.check),
                                    args.max_regression)
        if failures:
            print("REGRESSION:", file=sys.stderr)
            for f in failures:
                print(f"  {f}", file=sys.stderr)
            return 1
        print(f"regression check vs {args.check}: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
