"""Boxed-vs-batched micro-benchmark cases.

Each case runs the same logical computation twice on fresh contexts —
once with boxed ``(key, value)`` pair lists, once with columnar
:class:`~repro.common.batch.RecordBatch` partitions — and reports host
wall-clock for each.  Simulated costs are identical by construction (see
``tests/test_batch_equivalence.py``); what these measure is the *host*
speed of the representations, the quantity the columnar overhaul exists
to improve.

Timing covers the pipeline itself (parallelize through job completion);
context construction and teardown sit outside the clock.  Batched
pipelines end in ``collect()`` and stay columnar end to end — partitions
carry batches, the driver receives batches — which is precisely the
deployment mode the overhaul introduces.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, List

import numpy as np

from repro.common.batch import segment_reduce
from repro.common.config import ClusterConfig
from repro.dataflow.context import SparkContext
from repro.dataflow.partitioner import HashPartitioner
from repro.ps.context import PSContext

PARTITIONS = 8
FEATURE_DIM = 16

#: Worker count for the optional ``--parallel`` axis (0 = axis off).
#: Set by :func:`run_cases`; the dataflow cases then time a third leg —
#: the batched pipeline on a process pool — and attach ``parallel_s`` /
#: ``parallel_speedup`` / ``host_cores`` to their results.  The speedup
#: is only meaningful when the host has at least as many cores as
#: workers; the runner's regression gate checks ``host_cores`` and
#: treats undersized hosts as informational.
PARALLEL_WORKERS = 0

#: Counter prefixes embedded in the results JSON.  These are *simulated*
#: counters — shuffle volumes, PS request counts, HDFS bytes — so for a
#: fixed case they are bit-identical on every host, unlike the wall-clock
#: fields next to them.
METRIC_PREFIXES = ("dataflow.", "ps.", "hdfs.", "net.", "serve.",
                   "streaming.", "ingest.")


def _spark(parallel: int = 0) -> SparkContext:
    cluster = ClusterConfig(num_executors=4, executor_mem_bytes=1 << 40)
    return SparkContext(cluster, parallel=parallel)


def _metrics_snapshot(ctx: SparkContext) -> Dict[str, float]:
    """Deterministic counters from one run (sorted, prefix-filtered)."""
    return {
        name: value
        for name, value in sorted(ctx.metrics.snapshot().items())
        if name.startswith(METRIC_PREFIXES)
    }


def _pairs(n: int, key_space: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, key_space, size=n).astype(np.int64)
    values = rng.integers(0, 100, size=n).astype(np.float64)
    return keys, values


#: Best-of-N timing; keeps the committed quick-mode baseline stable enough
#: for CI to gate on speedup regressions.
REPEATS = 3


def _time_job(job: Callable[[SparkContext], object], parallel: int = 0
              ) -> tuple[float, Dict[str, float]]:
    """Best-of-N wall-clock for one pipeline; setup/teardown untimed.

    Also returns the simulated-counter snapshot of the last run (every
    repeat uses a fresh context, so the snapshots are identical).
    """
    best = float("inf")
    snapshot: Dict[str, float] = {}
    for _ in range(REPEATS):
        ctx = _spark(parallel)
        try:
            t0 = time.perf_counter()
            job(ctx)
            best = min(best, time.perf_counter() - t0)
            snapshot = _metrics_snapshot(ctx)
        finally:
            ctx.stop()
    return best, snapshot


def _pool_leg(job: Callable[[SparkContext], object],
              batched_s: float,
              batched_snap: Dict[str, float]) -> Dict[str, float]:
    """Optional third timing leg: the batched pipeline on the pool.

    Returns the extra result fields, or ``{}`` when the axis is off.
    Asserts the simulated counters match the serial batched run modulo
    the host-side ``dataflow.pool.*`` namespace — the bench doubles as
    an equivalence check at benchmark scale.
    """
    if PARALLEL_WORKERS < 2:
        return {}
    parallel_s, snap = _time_job(job, parallel=PARALLEL_WORKERS)

    def sim_only(s: Dict[str, float]) -> Dict[str, float]:
        return {k: v for k, v in s.items()
                if not k.startswith("dataflow.pool.")}

    if sim_only(snap) != sim_only(batched_snap):
        raise AssertionError(
            "pool run diverged from serial simulated counters")
    return {
        "parallel_s": round(parallel_s, 6),
        "parallel_speedup": round(batched_s / parallel_s, 3)
        if parallel_s else 0.0,
        "parallel_workers": PARALLEL_WORKERS,
        "host_cores": os.cpu_count() or 1,
    }


def _result(name: str, n: int, boxed_s: float, batched_s: float,
            metrics: Dict[str, float] | None = None) -> Dict:
    return {
        "name": name,
        "records": n,
        "boxed_s": round(boxed_s, 6),
        "batched_s": round(batched_s, 6),
        "speedup": round(boxed_s / batched_s, 3) if batched_s else 0.0,
        "records_per_s": int(n / batched_s) if batched_s else 0,
        "metrics": metrics or {},
    }


def case_shuffle(n: int) -> Dict:
    """Hash-partition ``n`` records through the full shuffle machinery."""
    keys, values = _pairs(n, max(16, n // 8))
    part = HashPartitioner(PARTITIONS)

    def boxed(ctx):
        ctx.parallelize(
            list(zip(keys.tolist(), values.tolist())), PARTITIONS
        ).partition_by(part).collect()

    def batched(ctx):
        ctx.parallelize_batches(keys, values, PARTITIONS).partition_by(
            part
        ).collect()

    boxed_s, _ = _time_job(boxed)
    batched_s, snap = _time_job(batched)
    out = _result("shuffle", n, boxed_s, batched_s, snap)
    out.update(_pool_leg(batched, batched_s, snap))
    return out


def case_reduce_by_key(n: int) -> Dict:
    """reduceByKey(add) with map-side combine over ``n`` records."""
    keys, values = _pairs(n, max(16, n // 16))

    def boxed(ctx):
        ctx.parallelize(
            list(zip(keys.tolist(), values.tolist())), PARTITIONS
        ).reduce_by_key(op="add", num_partitions=PARTITIONS).collect()

    def batched(ctx):
        ctx.parallelize_batches(keys, values, PARTITIONS).reduce_by_key(
            op="add", num_partitions=PARTITIONS
        ).collect()

    boxed_s, _ = _time_job(boxed)
    batched_s, snap = _time_job(batched)
    out = _result("reduce_by_key", n, boxed_s, batched_s, snap)
    out.update(_pool_leg(batched, batched_s, snap))
    return out


def case_pagerank_iter(n: int) -> Dict:
    """One PageRank superstep: contribs -> combine -> rank update."""
    keys, values = _pairs(n, max(16, n // 16), seed=1)

    def superstep(rdd):
        contribs = rdd.reduce_by_key(op="add", num_partitions=PARTITIONS)
        contribs.as_records().map_values(lambda s: 0.15 + 0.85 * s).collect()

    def boxed(ctx):
        superstep(ctx.parallelize(
            list(zip(keys.tolist(), values.tolist())), PARTITIONS
        ))

    def batched(ctx):
        superstep(ctx.parallelize_batches(keys, values, PARTITIONS))

    boxed_s, _ = _time_job(boxed)
    batched_s, snap = _time_job(batched)
    out = _result("pagerank_iter", n, boxed_s, batched_s, snap)
    out.update(_pool_leg(batched, batched_s, snap))
    return out


def case_graphsage_minibatch(n: int) -> Dict:
    """Minibatch neighbor aggregation: PS feature pull + per-dst sum.

    The pull itself is bulk in both variants (that is how the agent works);
    the contrast is the aggregation — boxed folds rows through a Python
    dict, batched runs one segment-reduce over the pulled columns.
    """
    num_vertices = max(64, n // 8)
    rng = np.random.default_rng(2)
    src = rng.integers(0, num_vertices, size=n).astype(np.int64)
    dst = rng.integers(0, num_vertices, size=n).astype(np.int64)
    feat_values = rng.integers(
        0, 10, size=(num_vertices, FEATURE_DIM)
    ).astype(np.float64)

    def run(aggregate) -> tuple:
        best = float("inf")
        snapshot: Dict[str, float] = {}
        for _ in range(REPEATS):
            cluster = ClusterConfig(
                num_executors=2, executor_mem_bytes=1 << 40,
                num_servers=2, server_mem_bytes=1 << 40,
            )
            spark = SparkContext(cluster)
            psctx = PSContext(spark)
            try:
                feats = psctx.create_matrix(
                    "feats", num_vertices, FEATURE_DIM
                )
                feats.set(np.arange(num_vertices), feat_values)
                t0 = time.perf_counter()
                aggregate(feats)
                best = min(best, time.perf_counter() - t0)
                snapshot = _metrics_snapshot(spark)
            finally:
                psctx.stop()
                spark.stop()
        return best, snapshot

    def boxed(feats):
        rows = feats.pull(src)
        acc: Dict[int, np.ndarray] = {}
        for d, row in zip(dst.tolist(), list(rows)):
            if d in acc:
                acc[d] = acc[d] + row
            else:
                acc[d] = row
        sorted(acc.items())

    def batched(feats):
        batch = feats.pull_batch(src)
        segment_reduce(dst, batch.values, "add")

    boxed_s, _ = run(boxed)
    batched_s, snap = run(batched)
    return _result("graphsage_minibatch", n, boxed_s, batched_s, snap)


def case_lint_incremental(n: int) -> Dict:
    """Full vs warm-cache lint of ``src/repro`` (the CI latency budget).

    "Boxed" is a cold run — every module parsed, summarized, and
    checked; "batched" is the warm incremental run against a primed
    ``--cache`` file, which restores summaries by content hash and
    replays cached verdicts.  ``n`` is unused (the workload is the
    package itself); ``records`` reports the file count.
    """
    import tempfile
    from pathlib import Path

    from repro.lint.engine import LintEngine, lint_tree

    pkg = Path(__file__).resolve().parents[2] / "src" / "repro"

    t0 = time.perf_counter()
    _, cold_stats = lint_tree([pkg])
    cold_s = time.perf_counter() - t0

    with tempfile.TemporaryDirectory() as tmp:
        cache = Path(tmp) / ".lint-cache.json"
        lint_tree([pkg], cache_path=cache)  # prime, untimed
        warm_s = float("inf")
        warm_stats: Dict[str, int] = {}
        for _ in range(REPEATS):
            eng = LintEngine()
            t0 = time.perf_counter()
            _, warm_stats = lint_tree([pkg], cache_path=cache, engine=eng)
            warm_s = min(warm_s, time.perf_counter() - t0)

    files = cold_stats["files"]
    return _result(
        "lint_incremental", files, cold_s, warm_s,
        {"lint.files": float(files),
         "lint.parsed_warm": float(warm_stats.get("parsed", 0)),
         "lint.reused_warm": float(warm_stats.get("reused", 0))},
    )


def case_serve_qps(n: int) -> Dict:
    """Online serving throughput: naive per-request pulls vs the plane.

    Boxed replays ``n`` Zipfian lookups as one single-key agent pull
    each — no batching, no caching, the loop a client library would
    write.  Batched routes the same stream through the
    :class:`~repro.serve.plane.ServingPlane`: quantum micro-batching
    dedupes keys, the hot-key cache absorbs the skewed head, and only
    cold keys reach the servers.
    """
    from repro.serve.plane import ServingPlane
    from repro.serve.workload import RequestGenerator, default_tenants

    key_space = 2_000
    tenants = default_tenants("ranks")
    requests = RequestGenerator(
        tenants, key_space=key_space, zipf_s=1.1, rate=1000.0, seed=3,
    ).generate(n)
    rng = np.random.default_rng(4)
    ranks = rng.random(key_space)

    def run(serve) -> tuple:
        best = float("inf")
        snapshot: Dict[str, float] = {}
        for _ in range(REPEATS):
            cluster = ClusterConfig(
                num_executors=2, executor_mem_bytes=1 << 40,
                num_servers=2, server_mem_bytes=1 << 40,
            )
            spark = SparkContext(cluster)
            psctx = PSContext(spark)
            try:
                vector = psctx.create_vector("ranks", key_space)
                vector.set(np.arange(key_space), ranks)
                t0 = time.perf_counter()
                serve(psctx, vector)
                best = min(best, time.perf_counter() - t0)
                snapshot = _metrics_snapshot(spark)
            finally:
                psctx.stop()
                spark.stop()
        return best, snapshot

    def boxed(psctx, vector):
        for request in requests:
            vector.pull(np.array([request.key], dtype=np.int64))

    def batched(psctx, vector):
        ServingPlane(
            psctx, tenants, cache_capacity=key_space // 10,
        ).run(requests)

    boxed_s, _ = run(boxed)
    batched_s, snap = run(batched)
    return _result("serve_qps", n, boxed_s, batched_s, snap)


def case_streaming_window(n: int) -> Dict:
    """Streaming windows: per-window full recompute vs incremental.

    Both legs replay the same mutation stream (adds + removals over a
    power-law base graph, ~1% churn per window) through the
    :class:`~repro.streaming.graph.StreamingGraph`.  Boxed re-runs the
    batch PageRank pipeline after every window — the operating mode the
    streaming plane replaces — while batched repairs the PS-resident
    rank/residual state with the incremental cascade.  Wall-clock is the
    host cost; ``sim_cost_ratio`` additionally pins the sim-clock
    incremental/full ratio the acceptance gate bounds at 0.25.
    """
    from repro.datasets.generators import powerlaw_graph
    from repro.ingest.mutations import edge_adds, edge_dels
    from repro.streaming import IncrementalPageRank, StreamingGraph

    windows = 4
    num_vertices = max(n, 100)
    base_edges = 10 * num_vertices
    src, dst = powerlaw_graph(num_vertices, base_edges, seed=11)
    rng = np.random.default_rng(12)
    per_window = max(2, n // windows)
    rm = per_window // 2
    removal_idx = rng.choice(base_edges, size=windows * rm, replace=False)
    batches = []
    for w in range(windows):
        adds = per_window - rm
        a_s = rng.integers(0, num_vertices, adds)
        a_d = (a_s + 1 + rng.integers(0, num_vertices - 1, adds)
               ) % num_vertices
        ridx = removal_idx[w * rm:(w + 1) * rm]
        batches.append(edge_adds(a_s, a_d)
                       + edge_dels(src[ridx], dst[ridx]))

    def run(refresh) -> tuple:
        best = float("inf")
        snapshot: Dict[str, float] = {}
        sim_cost = 0.0
        for _ in range(REPEATS):
            cluster = ClusterConfig(
                num_executors=4, executor_mem_bytes=1 << 40,
                num_servers=2, server_mem_bytes=1 << 40,
            )
            spark = SparkContext(cluster)
            psctx = PSContext(spark)
            try:
                graph = StreamingGraph(psctx, num_vertices,
                                       metrics=spark.metrics)
                graph.apply(edge_adds(src, dst))
                pr = IncrementalPageRank(graph, tol=1e-6)
                pr.bootstrap()
                s0 = spark.sim_time()
                t0 = time.perf_counter()
                for batch in batches:
                    delta = graph.apply(batch)
                    refresh(pr, delta)
                best = min(best, time.perf_counter() - t0)
                sim_cost = spark.sim_time() - s0
                snapshot = _metrics_snapshot(spark)
            finally:
                psctx.stop()
                spark.stop()
        return best, snapshot, sim_cost

    def boxed(pr, delta):
        pr.full_recompute()

    def batched(pr, delta):
        pr.update(delta)

    boxed_s, _, sim_full = run(boxed)
    batched_s, snap, sim_inc = run(batched)
    out = _result("streaming_window", n, boxed_s, batched_s, snap)
    out["sim_cost_full_s"] = round(sim_full, 9)
    out["sim_cost_incremental_s"] = round(sim_inc, 9)
    out["sim_cost_ratio"] = (round(sim_inc / sim_full, 6)
                             if sim_full else 0.0)
    return out


#: name -> (case_fn, quick_n, full_n).  Full-size counts are DS1/DS2-shaped
#: runs (paper Table I scale relative to the simulator): a million-record
#: shuffle is routine once the columnar paths and the pool carry it.
CASES: Dict[str, tuple] = {
    "shuffle": (case_shuffle, 20_000, 1_000_000),
    "reduce_by_key": (case_reduce_by_key, 20_000, 1_000_000),
    "pagerank_iter": (case_pagerank_iter, 20_000, 1_000_000),
    "graphsage_minibatch": (case_graphsage_minibatch, 20_000, 400_000),
    "lint_incremental": (case_lint_incremental, 0, 0),
    "serve_qps": (case_serve_qps, 4_000, 100_000),
    "streaming_window": (case_streaming_window, 2_000, 20_000),
}


def run_cases(quick: bool = True,
              names: List[str] | None = None,
              parallel: int = 0) -> List[Dict]:
    """Run the selected cases; returns one result dict per case.

    ``parallel >= 2`` turns on the pool axis for the dataflow cases
    (see :data:`PARALLEL_WORKERS`).
    """
    global PARALLEL_WORKERS
    PARALLEL_WORKERS = int(parallel)
    try:
        out = []
        for name, (fn, quick_n, full_n) in CASES.items():
            if names and name not in names:
                continue
            out.append(fn(quick_n if quick else full_n))
        return out
    finally:
        PARALLEL_WORKERS = 0
