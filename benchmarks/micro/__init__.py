"""Micro-benchmarks for the columnar hot path (boxed vs batched)."""
