"""Tests for PSGraph blocks, GraphOps and GraphIO."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import ClusterConfig
from repro.core.blocks import EdgeBlock, build_neighbor_block
from repro.core.context import PSGraphContext
from repro.core.graphio import GraphIO
from repro.core.ops import (
    count_edges,
    edges_from_arrays,
    load_edges,
    max_vertex_id,
    parse_edge_lines,
    to_neighbor_tables,
)
from repro.datasets.tencent import write_edges


def make_psg(num_executors=3, num_servers=2):
    cluster = ClusterConfig(
        num_executors=num_executors, executor_mem_bytes=1 << 40,
        num_servers=num_servers, server_mem_bytes=1 << 40,
    )
    return PSGraphContext(cluster)


@pytest.fixture
def psg():
    ctx = make_psg()
    yield ctx
    ctx.stop()


class TestBlocks:
    def test_edge_block_batches(self):
        b = EdgeBlock(np.arange(10), np.arange(10) + 1)
        batches = list(b.batches(4))
        assert [x.num_edges for x in batches] == [4, 4, 2]

    def test_edge_block_nbytes_includes_weight(self):
        b1 = EdgeBlock(np.arange(4), np.arange(4))
        b2 = EdgeBlock(np.arange(4), np.arange(4), np.ones(4))
        assert b2.logical_nbytes == b1.logical_nbytes + 32

    def test_build_neighbor_block_groups(self):
        t = np.array([2, 1, 2, 1, 3])
        o = np.array([5, 4, 6, 4, 7])
        block = build_neighbor_block(t, o)
        rows = dict((v, n.tolist()) for v, n in block.rows())
        assert rows == {1: [4, 4], 2: [5, 6], 3: [7]}

    def test_build_neighbor_block_dedupe(self):
        t = np.array([1, 1, 1])
        o = np.array([4, 4, 5])
        block = build_neighbor_block(t, o, dedupe=True)
        assert dict((v, n.tolist()) for v, n in block.rows()) == {1: [4, 5]}

    def test_build_neighbor_block_empty(self):
        block = build_neighbor_block(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert block.num_vertices == 0
        assert block.num_edges == 0

    def test_degrees(self):
        block = build_neighbor_block(
            np.array([1, 1, 2]), np.array([3, 4, 5])
        )
        assert block.degrees().tolist() == [2, 1]

    @settings(deadline=None, max_examples=25)
    @given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)),
                    min_size=1, max_size=50))
    def test_neighbor_block_preserves_edges(self, pairs):
        t = np.array([p[0] for p in pairs], dtype=np.int64)
        o = np.array([p[1] for p in pairs], dtype=np.int64)
        block = build_neighbor_block(t, o)
        rebuilt = sorted(
            (v, int(n)) for v, nbrs in block.rows() for n in nbrs
        )
        assert rebuilt == sorted(zip(t.tolist(), o.tolist()))


class TestOps:
    def test_parse_edge_lines(self):
        block = parse_edge_lines(iter(["1\t2", "3\t4", "", "bad"]))
        assert block.src.tolist() == [1, 3]
        assert block.dst.tolist() == [2, 4]

    def test_parse_weighted(self):
        block = parse_edge_lines(iter(["1\t2\t0.5", "3\t4"]), weighted=True)
        assert block.weight.tolist() == [0.5, 1.0]

    def test_load_edges_roundtrip(self, psg):
        src = np.array([0, 1, 2, 3])
        dst = np.array([1, 2, 3, 0])
        write_edges(psg.hdfs, "/in/e", src, dst, num_files=2)
        edges = load_edges(psg.spark, "/in/e")
        assert count_edges(edges) == 4
        assert max_vertex_id(edges) == 3

    def test_edges_from_arrays(self, psg):
        edges = edges_from_arrays(
            psg.spark, np.array([5, 6]), np.array([6, 7])
        )
        assert count_edges(edges) == 2
        assert max_vertex_id(edges) == 7

    def test_to_neighbor_tables_directed(self, psg):
        src = np.array([0, 0, 1, 2])
        dst = np.array([1, 2, 2, 0])
        edges = edges_from_arrays(psg.spark, src, dst, num_partitions=2)
        tables = to_neighbor_tables(edges, num_partitions=2)
        rows = {}
        for part in tables.foreach_partition(
                lambda it: [list(b.rows()) for b in it]):
            for rowlist in part:
                for v, nbrs in rowlist:
                    rows[int(v)] = sorted(nbrs.tolist())
        assert rows == {0: [1, 2], 1: [2], 2: [0]}

    def test_to_neighbor_tables_symmetric_dedupe(self, psg):
        src = np.array([0, 1, 0])
        dst = np.array([1, 0, 1])
        edges = edges_from_arrays(psg.spark, src, dst)
        tables = to_neighbor_tables(edges, symmetric=True, dedupe=True)
        rows = {}
        for part in tables.foreach_partition(
                lambda it: [list(b.rows()) for b in it]):
            for rowlist in part:
                for v, nbrs in rowlist:
                    rows[int(v)] = sorted(nbrs.tolist())
        assert rows == {0: [1], 1: [0]}

    def test_vertex_partitioning_owner(self, psg):
        src = np.arange(20)
        dst = (np.arange(20) + 1) % 20
        edges = edges_from_arrays(psg.spark, src, dst, num_partitions=3)
        tables = to_neighbor_tables(edges, num_partitions=4)
        placements = tables.map_partitions_with_index(
            lambda i, it: [(i, b.vertices) for b in it]
        ).collect()
        for pid, vertices in placements:
            assert (vertices % 4 == pid).all()


class TestGraphIO:
    def test_save_and_load_vertex_values(self, psg):
        ids = np.array([1, 5, 9])
        vals = np.array([0.5, 1.5, 2.5])
        GraphIO.save_vertex_values(psg, "/out/vals", ids, vals)
        back = dict(GraphIO.load_vertex_values(psg, "/out/vals"))
        assert back == {1: 0.5, 5: 1.5, 9: 2.5}

    def test_save_dataframe(self, psg):
        df = psg.create_dataframe([(1, 2.0), (3, 4.0)], ["v", "x"])
        GraphIO.save(df, "/out/df")
        lines = sorted(psg.spark.text_file("/out/df").collect())
        assert lines == ["1\t2.0", "3\t4.0"]
