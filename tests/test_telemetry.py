"""Tests for the telemetry pipeline: sketch, windowed series, SLO
burn-rate alerting, critical-path attribution, dashboard and CLIs."""

import json

import pytest

from repro.chaos import ChaosEngine, FaultSchedule, FaultSpec
from repro.common.config import MB, ClusterConfig
from repro.common.metrics import (
    EXECUTORS_ALIVE_G,
    MetricsRegistry,
    PS_SERVERS_ALIVE_G,
    PS_SERVERS_TOTAL_G,
)
from repro.common.sketch import QuantileSketch, merge
from repro.core.algorithms import PageRank
from repro.core.context import PSGraphContext
from repro.core.runner import GraphRunner
from repro.datasets.generators import powerlaw_graph
from repro.datasets.tencent import write_edges
from repro.obs import (
    SloEngine,
    SloSpec,
    TelemetryCollector,
    TimeSeriesStore,
    Tracer,
    build_telemetry_doc,
    critical_path,
)
from repro.obs.dashboard import render_dashboard
from repro.obs.telemetry import component_of


# ----------------------------------------------------------------------
# quantile sketch
# ----------------------------------------------------------------------

class TestQuantileSketch:
    def test_relative_accuracy(self):
        sk = QuantileSketch(alpha=0.01)
        values = [1.0 + (i % 997) * 0.37 for i in range(5000)]
        for v in values:
            sk.add(v)
        ordered = sorted(values)
        for q in (50, 90, 95, 99):
            exact = ordered[int(q / 100.0 * (len(ordered) - 1))]
            assert sk.percentile(q) == pytest.approx(exact, rel=0.03)

    def test_exact_extremes(self):
        sk = QuantileSketch()
        for v in (3.0, 9.0, 1.0, 7.0):
            sk.add(v)
        assert sk.percentile(0) == 1.0
        assert sk.percentile(100) == 9.0

    def test_deterministic_across_instances(self):
        a, b = QuantileSketch(), QuantileSketch()
        for i in range(1000):
            v = 0.001 * (i * 7 % 913 + 1)
            a.add(v)
            b.add(v)
        for q in (50, 95, 99):
            assert a.percentile(q) == b.percentile(q)
        assert a.to_dict() == b.to_dict()

    def test_bounded_memory_collapses(self):
        sk = QuantileSketch(alpha=0.01, max_buckets=32)
        for i in range(1, 20000):
            sk.add(float(i))
        assert len(sk.to_dict()["buckets"]) <= 32
        assert sk.count == 19999
        # Upper percentiles survive the collapse of the low buckets.
        assert sk.percentile(99) == pytest.approx(19800, rel=0.05)

    def test_count_above(self):
        sk = QuantileSketch(alpha=0.01)
        for v in (0.1, 0.2, 1.5, 2.0, 5.0):
            sk.add(v)
        assert sk.count_above(1.0) == 3
        assert sk.count_above(100.0) == 0

    def test_zero_and_negative_go_to_zero_bucket(self):
        sk = QuantileSketch()
        sk.add(0.0)
        sk.add(-1.0)
        sk.add(2.0)
        assert sk.count == 3
        assert sk.count_above(-0.5) == 3
        assert sk.percentile(0) == -1.0

    def test_merge(self):
        a, b = QuantileSketch(), QuantileSketch()
        for i in range(1, 100):
            a.add(float(i))
        for i in range(100, 200):
            b.add(float(i))
        m = merge(a, b)
        assert m.count == a.count + b.count
        assert m.percentile(100) == 199.0


# ----------------------------------------------------------------------
# time-series store
# ----------------------------------------------------------------------

class TestTimeSeriesStore:
    def test_counter_deltas_land_in_windows(self):
        r = MetricsRegistry()
        store = TimeSeriesStore(window_s=5.0)
        r.inc("dataflow.tasks.launched", 4)
        store.sample(1.0, r)
        r.inc("dataflow.tasks.launched", 6)
        store.sample(7.0, r)
        pts = store.series["dataflow.tasks.launched"].points
        assert list(pts) == [[0.0, 4.0], [1.0, 6.0]]

    def test_same_window_accumulates(self):
        r = MetricsRegistry()
        store = TimeSeriesStore(window_s=10.0)
        r.inc("c", 1)
        store.sample(1.0, r)
        r.inc("c", 2)
        store.sample(2.0, r)
        assert list(store.series["c"].points) == [[0.0, 3.0]]

    def test_gauge_keeps_last_value(self):
        r = MetricsRegistry()
        store = TimeSeriesStore(window_s=10.0)
        r.set_gauge("g", 5.0)
        store.sample(1.0, r)
        r.set_gauge("g", 2.0)
        store.sample(2.0, r)
        assert list(store.series["g"].points) == [[0.0, 2.0]]

    def test_histogram_rate_and_p99(self):
        r = MetricsRegistry()
        store = TimeSeriesStore(window_s=5.0)
        r.observe("h", 1.0)
        r.observe("h", 3.0)
        store.sample(1.0, r)
        assert list(store.series["h.rate"].points) == [[0.0, 2.0]]
        assert store.series["h.p99"].points[-1][1] == pytest.approx(
            r.histogram("h").percentile(99))

    def test_ring_buffer_retention(self):
        r = MetricsRegistry()
        store = TimeSeriesStore(window_s=1.0, max_windows=3)
        for w in range(10):
            r.inc("c")
            store.sample(float(w), r)
        pts = list(store.series["c"].points)
        assert len(pts) == 3
        assert pts[0][0] == 7.0 and pts[-1][0] == 9.0

    def test_component_mapping(self):
        assert component_of("dataflow.shuffle.records") == "shuffle"
        assert component_of("dataflow.tasks.launched") == "scheduler"
        assert component_of("ps.pull.calls") == "ps"
        assert component_of("net.rpc.bytes") == "rpc"
        assert component_of("mystery.metric") == "other"

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            TimeSeriesStore(window_s=0.0)
        with pytest.raises(ValueError):
            TimeSeriesStore(max_windows=0)


# ----------------------------------------------------------------------
# SLO engine
# ----------------------------------------------------------------------

def _availability_slo(**kw):
    defaults = dict(
        name="avail", description="gauge at full strength",
        kind="availability", objective=0.999,
        alive_gauge=PS_SERVERS_ALIVE_G, expected_gauge=PS_SERVERS_TOTAL_G,
        short_windows=1, long_windows=6, burn_threshold=10.0,
    )
    defaults.update(kw)
    return SloSpec(**defaults)


class TestSloEngine:
    def test_fires_and_resolves_on_availability(self):
        r = MetricsRegistry()
        r.set_gauge(PS_SERVERS_TOTAL_G, 2.0)
        r.set_gauge(PS_SERVERS_ALIVE_G, 2.0)
        engine = SloEngine([_availability_slo()], window_s=5.0)
        assert engine.evaluate(1.0, r) == []
        r.set_gauge(PS_SERVERS_ALIVE_G, 1.0)  # degraded
        changed = engine.evaluate(2.0, r)
        assert len(changed) == 1 and changed[0].active
        assert changed[0].fired_at_s == 2.0
        r.set_gauge(PS_SERVERS_ALIVE_G, 2.0)  # recovered
        # Advance past the short window so the bad probe ages out.
        changed = engine.evaluate(12.0, r)
        changed = engine.evaluate(17.0, r) or changed
        resolved = [a for a in changed if not a.active]
        assert resolved and resolved[0].resolved_at_s is not None

    def test_ratio_kind(self):
        r = MetricsRegistry()
        spec = SloSpec(
            name="success", description="", kind="ratio", objective=0.9,
            bad_counter="bad", total_counter="total",
            short_windows=1, long_windows=2, burn_threshold=5.0,
        )
        engine = SloEngine([spec], window_s=1.0)
        r.inc("total", 10)
        assert engine.evaluate(0.5, r) == []
        r.inc("total", 100)
        r.inc("bad", 80)
        # short burn: (80/100)/0.1 = 8.0; long burn: (80/110)/0.1 = 7.3
        changed = engine.evaluate(1.5, r)
        assert len(changed) == 1

    def test_latency_kind(self):
        r = MetricsRegistry()
        spec = SloSpec(
            name="lat", description="", kind="latency", objective=0.9,
            histogram="h", threshold_s=1.0,
            short_windows=1, long_windows=2, burn_threshold=5.0,
        )
        engine = SloEngine([spec], window_s=1.0)
        for _ in range(10):
            r.observe("h", 0.5)
        assert engine.evaluate(0.5, r) == []
        for _ in range(10):
            r.observe("h", 2.0)  # all above threshold
        assert len(engine.evaluate(1.5, r)) == 1

    def test_high_water_expectation_when_no_expected_gauge(self):
        r = MetricsRegistry()
        spec = _availability_slo(
            alive_gauge=EXECUTORS_ALIVE_G, expected_gauge=None)
        engine = SloEngine([spec], window_s=5.0)
        r.set_gauge(EXECUTORS_ALIVE_G, 4.0)
        assert engine.evaluate(1.0, r) == []
        r.set_gauge(EXECUTORS_ALIVE_G, 3.0)  # below its own high-water
        assert len(engine.evaluate(2.0, r)) == 1

    def test_rejects_bad_specs(self):
        with pytest.raises(ValueError):
            SloSpec(name="x", description="", kind="nope", objective=0.9)
        with pytest.raises(ValueError):
            SloSpec(name="x", description="", kind="ratio", objective=1.5)
        with pytest.raises(ValueError):
            _availability_slo(short_windows=4, long_windows=2)
        with pytest.raises(ValueError):
            SloEngine([_availability_slo(), _availability_slo()],
                      window_s=5.0)

    def test_status_rows(self):
        engine = SloEngine([_availability_slo()], window_s=5.0)
        [row] = engine.status()
        assert row["name"] == "avail"
        assert row["state"] == "ok"
        assert "objective_label" in row


# ----------------------------------------------------------------------
# end to end: chaos run with the collector attached
# ----------------------------------------------------------------------

def _chaos_telemetry_run(seed=11):
    cluster = ClusterConfig(
        num_executors=4, executor_mem_bytes=256 * MB,
        num_servers=2, server_mem_bytes=256 * MB,
    )
    tracer = Tracer()
    metrics = MetricsRegistry()
    with PSGraphContext(cluster, app_name="telemetry-test",
                        metrics=metrics, tracer=tracer,
                        checkpoint_interval=1) as ctx:
        src, dst = powerlaw_graph(300, 2000, seed=seed)
        write_edges(ctx.hdfs, "/input/edges", src, dst, num_files=4)
        collector = TelemetryCollector(metrics, tracer).attach(ctx.spark)
        schedule = FaultSchedule([
            FaultSpec("kill_server", index=0, at_epoch=3),
        ])
        engine = ChaosEngine(schedule, ctx.spark, ctx.ps).attach()
        engine.bind_telemetry(collector)
        try:
            GraphRunner(ctx).run(
                PageRank(max_iterations=6, tol=1e-9), "/input/edges")
        finally:
            engine.detach()
            collector.finalize(ctx.sim_time())
            collector.detach()
        doc = build_telemetry_doc(
            collector, tracer, ctx.sim_time(),
            meta={"algorithm": "pagerank", "seed": seed},
            chaos=engine.report(),
        )
        return collector, engine, tracer, ctx.sim_time(), doc


class TestChaosTelemetryEndToEnd:
    @pytest.fixture(scope="class")
    def run(self):
        return _chaos_telemetry_run()

    def test_alert_fires_between_injection_and_recovery(self, run):
        collector, engine, tracer, sim_time, _ = run
        [fault] = engine.fired
        assert fault.kind == "kill_server"
        alerts = [a for a in collector.alerts
                  if a.slo == "ps-availability"]
        assert alerts, "kill_server must trip the availability SLO"
        alert = alerts[0]
        recovery_spans = [s for s in tracer.spans()
                          if s.track == "recovery"]
        assert recovery_spans, "PS master must have recovered"
        recovery_end = max(s.end_s for s in recovery_spans)
        assert fault.sim_time_s <= alert.fired_at_s <= recovery_end

    def test_alert_mirrored_into_trace_and_metrics(self, run):
        collector, _, tracer, _, _ = run
        alert_instants = [s for s in tracer.spans()
                          if s.track == "alerts"
                          and s.name.startswith("alert ")]
        assert len(alert_instants) >= 1
        assert collector.metrics.get("obs.alerts.fired") == len(
            [a for a in collector.alerts])

    def test_detection_timeline_pairs_fault_with_alert(self, run):
        _, engine, _, _, _ = run
        [row] = engine.detection_timeline()
        assert row["kind"] == "kill_server"
        assert row["detected_at_s"] is not None
        assert row["detection_delay_s"] >= 0.0
        assert row["slo"] == "ps-availability"

    def test_deterministic_double_run(self):
        a = _chaos_telemetry_run(seed=11)
        b = _chaos_telemetry_run(seed=11)
        assert json.dumps(a[4], sort_keys=True) == \
               json.dumps(b[4], sort_keys=True)

    def test_critical_path_covers_95_percent(self, run):
        _, _, tracer, sim_time, _ = run
        report = critical_path(tracer.spans(), sim_time)
        assert report.covered_pct >= 95.0
        assert sum(r.pct for r in report.table()) >= 95.0

    def test_telemetry_doc_schema(self, run):
        *_, doc = run
        assert doc["schema"] == "repro.telemetry/v1"
        assert doc["telemetry"]["ticks"] > 0
        assert doc["telemetry"]["series"]
        assert doc["critical_path"]["covered_pct"] >= 95.0
        assert doc["chaos"]["detection"]
        json.dumps(doc)  # JSON-serializable end to end


# ----------------------------------------------------------------------
# critical path unit behavior
# ----------------------------------------------------------------------

class TestCriticalPath:
    def test_gap_attributed_to_recovery_then_idle(self):
        t = Tracer()
        t.add("driver", "stages", "stage 0", 0.0, 4.0,
              {"stage": 0, "kind": "result", "tasks": 1})
        t.add("driver", "recovery", "ps.recover", 4.0, 7.0)
        report = critical_path(t.spans(), 10.0)
        by_label = {r.label: r.seconds for r in report.rows}
        assert by_label["recovery:ps.recover"] == pytest.approx(3.0)
        assert by_label["driver:idle"] == pytest.approx(3.0)
        assert report.covered_pct == pytest.approx(100.0)

    def test_stage_split_by_critical_executor(self):
        t = Tracer()
        t.add("driver", "stages", "stage 0", 0.0, 10.0,
              {"stage": 0, "kind": "result", "tasks": 2})
        t.add("executor-0", "tasks", "tasks s0", 0.0, 4.0, {"stage": 0})
        t.add("executor-1", "tasks", "tasks s0", 0.0, 10.0, {"stage": 0})
        # Critical executor-1's detail: 6s task with 3s nested ps.pull.
        t.add("executor-1", "s0.p1", "task", 0.0, 10.0)
        t.add("executor-1", "s0.p1", "ps.pull", 2.0, 7.0)
        report = critical_path(t.spans(), 10.0)
        by_label = {r.label: r.seconds for r in report.rows}
        assert by_label["result:ps.pull"] == pytest.approx(5.0)
        assert by_label["result:compute"] == pytest.approx(5.0)

    def test_empty_spans_all_idle(self):
        report = critical_path([], 5.0)
        assert [r.label for r in report.rows] == ["driver:idle"]
        assert report.covered_pct == pytest.approx(100.0)

    def test_top_n_folds_tail(self):
        t = Tracer()
        for i in range(5):
            t.add("driver", "stages", f"stage {i}",
                  float(i), float(i) + 1.0,
                  {"stage": i, "kind": f"k{i}", "tasks": 1})
        report = critical_path(t.spans(), 5.0, top_n=2)
        table = report.table()
        assert len(table) == 3
        assert table[-1].label == "(other)"
        assert sum(r.pct for r in table) == pytest.approx(100.0)


# ----------------------------------------------------------------------
# dashboard + CLIs
# ----------------------------------------------------------------------

class TestDashboard:
    def test_render_full_document(self):
        *_, doc = _chaos_telemetry_run()
        html = render_dashboard(doc)
        assert html.startswith("<!DOCTYPE html>")
        assert "SLO status" in html
        assert "Critical path" in html
        assert "Fault detection timeline" in html
        assert "ps-availability" in html
        assert "prefers-color-scheme: dark" in html
        assert "NaN" not in html

    def test_render_is_deterministic(self):
        *_, doc = _chaos_telemetry_run()
        assert render_dashboard(doc) == render_dashboard(doc)

    def test_render_minimal_document(self):
        doc = {"schema": "repro.telemetry/v1", "meta": {},
               "sim_time_s": 0.0,
               "telemetry": {"window_s": 5.0, "ticks": 0,
                             "series": {}, "slos": [], "alerts": []}}
        html = render_dashboard(doc)
        assert "no alerts fired" in html


class TestObsCli:
    def _write_doc(self, tmp_path):
        *_, doc = _chaos_telemetry_run()
        path = tmp_path / "telemetry.json"
        path.write_text(json.dumps(doc))
        return path

    def test_report_writes_dashboard_and_json(self, tmp_path, capsys):
        from repro.obs.cli import main
        src = self._write_doc(tmp_path)
        out = tmp_path / "dash.html"
        jout = tmp_path / "clean.json"
        rc = main(["report", str(src), "--out", str(out),
                   "--json", str(jout), "--require-alert", "1"])
        assert rc == 0
        assert out.read_text().startswith("<!DOCTYPE html>")
        assert json.loads(jout.read_text())["schema"] == \
            "repro.telemetry/v1"
        stdout = capsys.readouterr().out
        assert "critical" in stdout and "alert" in stdout

    def test_require_alert_fails_when_none(self, tmp_path):
        from repro.obs.cli import main
        doc = {"schema": "repro.telemetry/v1", "meta": {},
               "sim_time_s": 1.0,
               "telemetry": {"window_s": 5.0, "ticks": 1,
                             "series": {}, "slos": [], "alerts": []}}
        path = tmp_path / "t.json"
        path.write_text(json.dumps(doc))
        assert main(["report", str(path), "--out",
                     str(tmp_path / "d.html"),
                     "--require-alert", "1"]) == 1

    def test_rejects_non_telemetry_json(self, tmp_path):
        from repro.obs.cli import main
        path = tmp_path / "x.json"
        path.write_text("{}")
        assert main(["report", str(path)]) == 1


class TestMainCliTelemetryFlag:
    def test_telemetry_flag_writes_document(self, tmp_path):
        from repro.cli import main
        edges = tmp_path / "edges.tsv"
        edges.write_text("0\t1\n1\t2\n2\t0\n1\t0\n2\t1\n")
        out = tmp_path / "telemetry.json"
        rc = main([
            "pagerank", "--input", str(edges), "--iterations", "2",
            "--executors", "2", "--servers", "1",
            "--telemetry", str(out),
        ])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro.telemetry/v1"
        assert doc["meta"]["algorithm"] == "pagerank"
        assert doc["critical_path"]["covered_pct"] >= 95.0
