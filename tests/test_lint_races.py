"""Happens-before race detector on hand-built span/access sequences."""

from repro.lint.races import (
    FENCE_BARRIER,
    FENCE_STAGE,
    PsAccess,
    extract_accesses,
    extract_fences,
    find_races,
    happens_before,
)
from repro.obs.tracer import Tracer


def acc(component, op, matrix, start, end, col=None):
    return PsAccess(component, op, matrix, col, start, end)


# ----------------------------------------------------------------------
# happens_before
# ----------------------------------------------------------------------

def test_same_component_program_order():
    a = acc("executor-0", "push", "m", 0.0, 1.0)
    b = acc("executor-0", "pull", "m", 2.0, 3.0)
    assert happens_before(a, b, [])
    assert not happens_before(b, a, [])


def test_cross_component_needs_fence():
    a = acc("executor-0", "set", "m", 0.0, 1.0)
    b = acc("executor-1", "pull", "m", 2.0, 3.0)
    assert not happens_before(a, b, [])
    assert happens_before(a, b, [1.5])


def test_overlapping_windows_never_ordered():
    a = acc("executor-0", "set", "m", 0.0, 2.0)
    b = acc("executor-1", "pull", "m", 1.0, 3.0)
    # a fence "inside" the overlap cannot order overlapping windows
    assert not happens_before(a, b, [1.5])


def test_fence_on_boundary_counts():
    a = acc("executor-0", "set", "m", 0.0, 1.0)
    b = acc("executor-1", "pull", "m", 1.0, 2.0)
    assert happens_before(a, b, [1.0])


# ----------------------------------------------------------------------
# find_races classification
# ----------------------------------------------------------------------

def test_stale_read_detected():
    races = find_races(accesses=[
        acc("executor-0", "set", "m", 0.0, 1.0),
        acc("executor-1", "pull", "m", 0.5, 1.5),
    ], fences=[])
    assert [r.kind for r in races] == ["stale-read"]
    assert races[0].matrix == "m"


def test_lost_update_detected():
    races = find_races(accesses=[
        acc("executor-0", "set", "m", 0.0, 1.0),
        acc("executor-1", "set", "m", 0.5, 1.5),
    ], fences=[])
    assert [r.kind for r in races] == ["lost-update"]


def test_concurrent_pushes_commute():
    races = find_races(accesses=[
        acc("executor-0", "push", "m", 0.0, 1.0),
        acc("executor-1", "push", "m", 0.5, 1.5),
    ], fences=[])
    assert races == []


def test_push_vs_set_is_lost_update():
    races = find_races(accesses=[
        acc("executor-0", "push", "m", 0.0, 1.0),
        acc("executor-1", "set", "m", 0.5, 1.5),
    ], fences=[])
    assert [r.kind for r in races] == ["lost-update"]


def test_concurrent_reads_are_fine():
    races = find_races(accesses=[
        acc("executor-0", "pull", "m", 0.0, 1.0),
        acc("executor-1", "pull", "m", 0.5, 1.5),
    ], fences=[])
    assert races == []


def test_fence_between_removes_race():
    races = find_races(accesses=[
        acc("executor-0", "set", "m", 0.0, 1.0),
        acc("executor-1", "pull", "m", 2.0, 3.0),
    ], fences=[(1.5, FENCE_STAGE)])
    assert races == []


def test_different_matrices_do_not_conflict():
    races = find_races(accesses=[
        acc("executor-0", "set", "m1", 0.0, 1.0),
        acc("executor-1", "pull", "m2", 0.5, 1.5),
    ], fences=[])
    assert races == []


def test_disjoint_columns_do_not_conflict():
    races = find_races(accesses=[
        acc("executor-0", "set", "m", 0.0, 1.0, col=0),
        acc("executor-1", "set", "m", 0.5, 1.5, col=1),
    ], fences=[])
    assert races == []


def test_unscoped_access_conflicts_with_column_scoped():
    races = find_races(accesses=[
        acc("executor-0", "set", "m", 0.0, 1.0),
        acc("executor-1", "set", "m", 0.5, 1.5, col=1),
    ], fences=[])
    assert len(races) == 1


def test_same_component_never_races_with_itself():
    races = find_races(accesses=[
        acc("executor-0", "set", "m", 0.0, 1.0),
        acc("executor-0", "set", "m", 0.5, 1.5),
    ], fences=[])
    assert races == []


def test_dedup_counts_repeated_patterns():
    races = find_races(accesses=[
        acc("executor-0", "set", "m", 0.0, 1.0),
        acc("executor-1", "set", "m", 0.5, 1.5),
        acc("executor-2", "set", "m", 0.6, 1.6),
    ], fences=[])
    assert len(races) == 1
    assert races[0].count == 3  # the three pairwise windows collapse


# ----------------------------------------------------------------------
# span extraction
# ----------------------------------------------------------------------

def _record_ps_span(tracer, component, op, matrix, start, end, col=None):
    tags = {"matrix": matrix}
    if col is not None:
        tags["col"] = col
    tracer.add(component, "tasks", f"ps.{op}", start, end, tags)


def test_extract_accesses_reads_client_spans_only():
    tracer = Tracer()
    _record_ps_span(tracer, "executor-0", "pull", "m", 0.0, 1.0)
    _record_ps_span(tracer, "executor-1", "set", "m", 0.5, 1.5, col=2)
    # server-side ops track and non-PS spans are ignored
    tracer.add("ps-server-0", "ops", "ps.set", 0.5, 1.5, {"matrix": "m"})
    tracer.add("executor-0", "tasks", "shuffle.write", 0.0, 1.0, {})
    accesses = extract_accesses(tracer.spans())
    assert [(a.component, a.op, a.col) for a in accesses] == [
        ("executor-0", "pull", None),
        ("executor-1", "set", 2),
    ]


def test_extract_fences_stage_ends_and_bsp_marks_only():
    tracer = Tracer()
    tracer.add("driver", "stages", "stage", 0.0, 1.0, {"stage": 0})
    tracer.instant("driver", "iterations", "iter", 2.0, {"mode": "bsp"})
    tracer.instant("driver", "iterations", "iter", 3.0, {"mode": "asp"})
    tracer.add("executor-0", "stages", "stage", 0.0, 4.0, {})
    fences = extract_fences(tracer.spans())
    assert fences == [(1.0, FENCE_STAGE), (2.0, FENCE_BARRIER)]


def test_end_to_end_from_spans():
    tracer = Tracer()
    _record_ps_span(tracer, "executor-0", "set", "w", 0.0, 1.0)
    _record_ps_span(tracer, "executor-1", "pull", "w", 0.5, 1.5)
    races = find_races(tracer.spans())
    assert [r.kind for r in races] == ["stale-read"]
    text = races[0].describe()
    assert "stale-read" in text and "`w`" in text
