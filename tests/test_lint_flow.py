"""Fixtures for the flow-sensitive SIM1xx rules.

Each known-bad snippet must produce *exactly one* violation of its
target rule under the full flow-rule set — proving both that the rule
fires and that its four siblings stay quiet on the pattern.  The
negatives pin the sanctioned alternatives, and the sweep at the bottom
asserts the real package lints clean modulo the committed baseline.
"""

import textwrap
from pathlib import Path

from repro.lint.baseline import apply_baseline, load_baseline
from repro.lint.engine import LintEngine, lint_paths, lint_tree
from repro.lint.rules import get_rules

REPO = Path(__file__).resolve().parent.parent

FLOW_RULES = ["SIM101", "SIM102", "SIM103", "SIM104", "SIM105"]


def lint_flow(source: str, relpath: str = "dataflow/fake.py"):
    engine = LintEngine(get_rules(enable=FLOW_RULES))
    return engine.lint_source(textwrap.dedent(source), relpath, relpath)


def rule_ids(violations):
    return [v.rule_id for v in violations]


# ----------------------------------------------------------------------
# SIM101 closure-capture safety
# ----------------------------------------------------------------------

def test_sim101_rebound_capture_fires_exactly_once():
    vs = lint_flow("""\
        def driver(rdd):
            factor = 2
            out = rdd.map(lambda x: x * factor)
            factor = 3
            return out
    """)
    assert rule_ids(vs) == ["SIM101"]
    assert "rebound" in vs[0].message


def test_sim101_driver_context_capture():
    vs = lint_flow("""\
        from repro.dataflow.context import SparkContext

        def driver(rdd):
            ctx = SparkContext()
            return rdd.map(lambda x: ctx.parallelize(x))
    """)
    assert rule_ids(vs) == ["SIM101"]
    assert "SparkContext" in vs[0].message


def test_sim101_quiet_when_bound_via_default():
    vs = lint_flow("""\
        def driver(rdd):
            factor = 2
            out = rdd.map(lambda x, k=factor: x * k)
            factor = 3
            return out
    """)
    assert vs == []


def test_sim101_quiet_without_later_rebind():
    vs = lint_flow("""\
        def driver(rdd):
            factor = 2
            return rdd.map(lambda x: x * factor)
    """)
    assert vs == []


# ----------------------------------------------------------------------
# SIM102 unpicklable captures
# ----------------------------------------------------------------------

def test_sim102_lock_capture_fires_exactly_once():
    vs = lint_flow("""\
        import threading

        def driver(rdd):
            lock = threading.Lock()
            return rdd.map(lambda x: (x, lock))
    """)
    assert rule_ids(vs) == ["SIM102"]
    assert "threading.Lock" in vs[0].message


def test_sim102_generator_capture():
    vs = lint_flow("""\
        def driver(rdd, items):
            feed = (i * 2 for i in items)
            return rdd.map(lambda x: (x, feed))
    """)
    assert rule_ids(vs) == ["SIM102"]
    assert "generator" in vs[0].message


def test_sim102_quiet_on_plain_values():
    vs = lint_flow("""\
        def driver(rdd):
            table = {1: "a", 2: "b"}
            return rdd.map(lambda x: table.get(x))
    """)
    assert vs == []


def test_sim102_pool_submit_boundary_fires():
    # Closures handed to the pool boundary (scheduler.run_job /
    # pool.run_stage) cross a fork/pickle boundary like RDD closures do;
    # the docs/static-analysis.md multiprocessing checklist applies.
    vs = lint_flow("""\
        import threading

        def driver(scheduler, rdd):
            lock = threading.Lock()
            return scheduler.run_job(rdd, lambda p: (p, lock))
    """)
    assert rule_ids(vs) == ["SIM102"]
    assert "threading.Lock" in vs[0].message


def test_sim102_pool_run_stage_generator_capture():
    vs = lint_flow("""\
        def driver(pool, ctx, items):
            feed = (i * 2 for i in items)
            return pool.run_stage(ctx, 0, [0, 1],
                                  lambda p, tctx: next(feed))
    """)
    assert rule_ids(vs) == ["SIM102"]
    assert "generator" in vs[0].message


def test_sim102_pool_submit_quiet_on_plain_values():
    vs = lint_flow("""\
        def driver(scheduler, rdd):
            factor = 2.0
            return scheduler.run_job(rdd, lambda p: [x * factor for x in p])
    """)
    assert vs == []


# ----------------------------------------------------------------------
# SIM103 metering contract
# ----------------------------------------------------------------------

def test_sim103_unmetered_materialization_fires_exactly_once():
    vs = lint_flow("""\
        import numpy as np

        def gather(tctx, parts):
            out = np.concatenate(parts)
            return out
    """)
    assert rule_ids(vs) == ["SIM103"]
    assert "moves bytes" in vs[0].message


def test_sim103_quiet_when_every_path_charges():
    vs = lint_flow("""\
        import numpy as np

        def gather(tctx, parts):
            out = np.concatenate(parts)
            tctx.cost.cpu_s += out.nbytes * 1e-9
            return out
    """)
    assert vs == []


def test_sim103_flags_the_uncharged_branch_only():
    # The charge sits in one branch; the other reaches the exit
    # unmetered, so the mover is still on a violating path.
    vs = lint_flow("""\
        import numpy as np

        def gather(tctx, parts, fast):
            out = np.concatenate(parts)
            if fast:
                return out
            tctx.cost.cpu_s += out.nbytes * 1e-9
            return out
    """)
    assert rule_ids(vs) == ["SIM103"]


def test_sim103_none_guard_paths_are_vacuously_compliant():
    # `charge_primitive_compute` and friends are no-ops when there is
    # no task context; the None branch of the guard is not an
    # unmetered path, it is driver-side execution.
    vs = lint_flow("""\
        import numpy as np

        def gather(parts):
            tctx = current_task_context()
            out = np.concatenate(parts)
            if tctx is not None:
                tctx.cost.cpu_s += out.nbytes * 1e-9
            return out
    """)
    assert vs == []


def test_sim103_non_context_guard_is_not_vacuous():
    # The same shape around an ordinary flag must NOT be excused.
    vs = lint_flow("""\
        import numpy as np

        def gather(tctx, parts, metered):
            out = np.concatenate(parts)
            if metered is not None:
                tctx.cost.cpu_s += out.nbytes * 1e-9
            return out
    """)
    assert rule_ids(vs) == ["SIM103"]


def test_sim103_callee_charge_satisfies_contract():
    # The callee charges on the caller's accumulator; the summary
    # propagates charges_metering to the call node.
    vs = lint_flow("""\
        import numpy as np

        def charged_concat(tctx, parts):
            out = np.concatenate(parts)
            tctx.cost.cpu_s += out.nbytes * 1e-9
            return out

        def gather(tctx, parts):
            return charged_concat(tctx, parts)
    """)
    assert vs == []


def test_sim103_skips_functions_outside_the_contract():
    # No accumulator in sight: the helper cannot charge; its callers
    # inherit the moves_bytes effect instead.
    vs = lint_flow("""\
        import numpy as np

        def pure_helper(parts):
            return np.concatenate(parts)
    """)
    assert vs == []


# ----------------------------------------------------------------------
# SIM104 RNG taint
# ----------------------------------------------------------------------

def test_sim104_unseeded_draw_into_push_fires_exactly_once():
    vs = lint_flow("""\
        import random

        def place(ps, keys):
            jitter = random.random()
            ps.push(keys, jitter)
    """)
    assert rule_ids(vs) == ["SIM104"]
    assert "random.random" in vs[0].message


def test_sim104_tracks_derived_values():
    vs = lint_flow("""\
        import random

        def place(ps, keys):
            raw = random.random()
            scaled = raw * 10.0
            ps.partition_by(scaled)
    """)
    assert rule_ids(vs) == ["SIM104"]


def test_sim104_quiet_on_seeded_generator():
    vs = lint_flow("""\
        import numpy as np

        def place(ps, keys, seed):
            rng = np.random.default_rng(seed)
            ps.push(keys, rng.random(len(keys)))
    """)
    assert vs == []


def test_sim104_rebinding_clears_the_taint():
    vs = lint_flow("""\
        import random

        def place(ps, keys):
            jitter = random.random()
            jitter = 0.0
            ps.push(keys, jitter)
    """)
    assert vs == []


# ----------------------------------------------------------------------
# SIM105 resource leaks
# ----------------------------------------------------------------------

def test_sim105_leaked_span_fires_exactly_once():
    vs = lint_flow("""\
        def trace(tracer, flag):
            span = tracer.task_span("load")
            if flag:
                span.close()
            return flag
    """)
    assert rule_ids(vs) == ["SIM105"]
    assert "task_span" in vs[0].message


def test_sim105_quiet_with_finally_release():
    vs = lint_flow("""\
        def trace(tracer, work):
            span = tracer.task_span("load")
            try:
                return work()
            finally:
                span.close()
    """)
    assert vs == []


def test_sim105_quiet_with_with_block():
    vs = lint_flow("""\
        def trace(tracer, work):
            with tracer.task_span("load"):
                return work()
    """)
    assert vs == []


def test_sim105_return_transfers_ownership():
    vs = lint_flow("""\
        def open_span(tracer):
            span = tracer.task_span("load")
            return span
    """)
    assert vs == []


# ----------------------------------------------------------------------
# cross-module resolution through the shared program index
# ----------------------------------------------------------------------

def _write(tmp_path: Path, rel: str, source: str) -> Path:
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def test_annotated_receiver_resolves_across_modules(tmp_path):
    _write(tmp_path, "graphx/graph.py", """\
        import numpy as np

        class Graph:
            def collect(self):
                return np.concatenate(self.parts)
    """)
    _write(tmp_path, "graphx/algo.py", """\
        from repro.graphx.graph import Graph

        def kcore(graph: Graph, tctx):
            return graph.collect()
    """)
    vs, _stats = lint_tree([tmp_path], get_rules(enable=FLOW_RULES))
    assert rule_ids(vs) == ["SIM103"]
    assert vs[0].path.endswith("algo.py")


def test_imported_callee_effects_cross_modules(tmp_path):
    _write(tmp_path, "dataflow/helper.py", """\
        import numpy as np

        def merge(parts):
            return np.concatenate(parts)
    """)
    _write(tmp_path, "dataflow/stage.py", """\
        from repro.dataflow.helper import merge

        def run(tctx, parts):
            return merge(parts)
    """)
    vs, _stats = lint_tree([tmp_path], get_rules(enable=FLOW_RULES))
    assert rule_ids(vs) == ["SIM103"]
    assert vs[0].path.endswith("stage.py")


def test_suppression_comment_silences_flow_rule():
    vs = lint_flow("""\
        import numpy as np

        def gather(tctx, parts):
            out = np.concatenate(parts)  # repro-lint: disable=SIM103
            return out
    """)
    assert vs == []


# ----------------------------------------------------------------------
# no-false-positive sweep over the real package
# ----------------------------------------------------------------------

def test_src_repro_lints_clean_modulo_baseline():
    violations = lint_paths([REPO / "src" / "repro"])
    baseline = REPO / "lint-baseline.json"
    if baseline.exists():
        violations, _, _ = apply_baseline(
            violations, load_baseline(baseline))
    assert violations == [], "\n".join(v.format() for v in violations)
