"""Golden-file tests for CFG construction plus the flow queries.

The dumps pin the graph shape for each structured-control construct;
any builder change that moves an edge shows up as a readable diff of
``CFG.dump()``, not a mystery rule regression three layers up.
"""

import textwrap

import pytest

from repro.lint.cfg import build_cfg, cfg_for_source


def cfg_of(source: str):
    return cfg_for_source(textwrap.dedent(source), "f")


def dump_of(source: str) -> str:
    return cfg_of(source).dump()


# ----------------------------------------------------------------------
# golden dumps
# ----------------------------------------------------------------------

def test_golden_branch():
    assert dump_of("""\
        def f(x):
            if x > 0:
                a = 1
            else:
                a = 2
            return a
    """) == textwrap.dedent("""\
        0 entry ENTRY -> [2]
        1 exit EXIT -> []
        2 stmt params -> [3]
        3 test if L2 -> [4,5]
        4 stmt assign L3 -> [6]
        5 stmt assign L5 -> [6]
        6 stmt return L6 -> [1]""")


def test_golden_loop_with_break():
    assert dump_of("""\
        def f(n):
            i = 0
            while i < n:
                if i == 3:
                    break
                i += 1
            return i
    """) == textwrap.dedent("""\
        0 entry ENTRY -> [2]
        1 exit EXIT -> []
        2 stmt params -> [3]
        3 stmt assign L2 -> [4]
        4 test while L3 -> [5,8]
        5 test if L4 -> [6,7]
        6 stmt break L5 -> [8]
        7 stmt augassign L6 -> [4]
        8 stmt return L7 -> [1]""")


def test_golden_try_finally_routes_return_through_finally():
    # The `return` (node 5) has no edge to EXIT; it flows into the
    # finally suite (node 6), which alone reaches the exit — a release
    # there dominates the early return like it does at runtime.
    assert dump_of("""\
        def f(tracer):
            span = tracer.task_span("load")
            try:
                data = span.read()
                return data
            finally:
                span.close()
    """) == textwrap.dedent("""\
        0 entry ENTRY -> [2]
        1 exit EXIT -> []
        2 stmt params -> [3]
        3 stmt assign L2 -> [4]
        4 stmt assign L4 -> [5]
        5 stmt return L5 -> [6]
        6 stmt expr L7 -> [1]""")


def test_golden_try_except():
    # Every try-body statement gets an edge to the handler head, plus
    # the pre-body frontier (params) so an empty body cannot orphan it.
    assert dump_of("""\
        def f(src):
            try:
                data = src.read()
            except ValueError:
                data = ""
            return data
    """) == textwrap.dedent("""\
        0 entry ENTRY -> [2]
        1 exit EXIT -> []
        2 stmt params -> [3,4]
        3 except except L4 -> [5]
        4 stmt assign L3 -> [3,6]
        5 stmt assign L5 -> [6]
        6 stmt return L6 -> [1]""")


def test_golden_with_block():
    assert dump_of("""\
        def f(tracer):
            with tracer.task_span("load") as span:
                data = span.read()
            return data
    """) == textwrap.dedent("""\
        0 entry ENTRY -> [2]
        1 exit EXIT -> []
        2 stmt params -> [3]
        3 with with L2 -> [4]
        4 stmt assign L3 -> [5]
        5 stmt return L4 -> [1]""")


def test_while_true_has_no_fall_through():
    # A constant-true test must not fabricate a zero-iteration path
    # around the body; the only way out is the break.
    cfg = cfg_of("""\
        def f(q):
            while True:
                item = q.get()
                if item is None:
                    break
    """)
    test_node = next(n for n in cfg.nodes if n.kind == "test"
                     and n.label.startswith("while"))
    assert cfg.exit not in cfg.succ[test_node.idx]
    break_node = next(n for n in cfg.nodes if n.label.startswith("break"))
    assert cfg.succ[break_node.idx] == [cfg.exit]


# ----------------------------------------------------------------------
# branch edge labels
# ----------------------------------------------------------------------

def test_if_edges_carry_polarity_labels():
    cfg = cfg_of("""\
        def f(x):
            if x > 0:
                a = 1
            else:
                a = 2
            return a
    """)
    test_idx = next(n.idx for n in cfg.nodes if n.kind == "test")
    then_idx, else_idx = cfg.succ[test_idx]
    assert cfg.edge_labels[(test_idx, then_idx)] == "true"
    assert cfg.edge_labels[(test_idx, else_idx)] == "false"


def test_elseless_if_labels_fall_through_false():
    cfg = cfg_of("""\
        def f(x):
            if x > 0:
                a = 1
            return x
    """)
    test_idx = next(n.idx for n in cfg.nodes if n.kind == "test")
    ret_idx = next(n.idx for n in cfg.nodes
                   if n.label.startswith("return"))
    assert cfg.edge_labels[(test_idx, ret_idx)] == "false"


def test_empty_polarities_drop_the_label():
    # `if x: pass` — both branches land on the same join node, so the
    # single physical edge carries no meaningful polarity.
    cfg = cfg_of("""\
        def f(x):
            if x:
                pass
            return x
    """)
    test_idx = next(n.idx for n in cfg.nodes if n.kind == "test")
    ret_idx = next(n.idx for n in cfg.nodes
                   if n.label.startswith("return"))
    # The pass statement is its own node, so here the edges differ and
    # both labels survive; collapse them by hand to exercise the drop.
    cfg._edge(test_idx, ret_idx, "true")
    assert (test_idx, ret_idx) not in cfg.edge_labels


# ----------------------------------------------------------------------
# path queries with node / edge cuts
# ----------------------------------------------------------------------

def test_reachable_from_avoiding_edges_cuts_one_branch():
    cfg = cfg_of("""\
        def f(x):
            if x > 0:
                a = 1
            else:
                a = 2
            return a
    """)
    test_idx = next(n.idx for n in cfg.nodes if n.kind == "test")
    then_idx = next(s for s in cfg.succ[test_idx]
                    if cfg.edge_labels.get((test_idx, s)) == "true")
    cut = {(test_idx, then_idx)}
    reach = cfg.reachable_from(cfg.entry, avoiding_edges=cut)
    assert then_idx not in reach
    assert cfg.exit in reach  # the else branch still gets there


def test_reaches_avoiding_edges():
    cfg = cfg_of("""\
        def f(n):
            i = 0
            while i < n:
                if i == 3:
                    break
                i += 1
            return i
    """)
    break_idx = next(n.idx for n in cfg.nodes
                     if n.label.startswith("break"))
    ret_idx = next(n.idx for n in cfg.nodes
                   if n.label.startswith("return"))
    bwd = cfg.reaches(cfg.exit, avoiding_edges={(break_idx, ret_idx)})
    assert break_idx not in bwd  # its only way out was the cut edge
    assert ret_idx in bwd


def test_exists_path_respects_interior_avoid_set():
    cfg = cfg_of("""\
        def f(tracer):
            span = tracer.task_span("load")
            try:
                data = span.read()
                return data
            finally:
                span.close()
    """)
    open_idx = next(n.idx for n in cfg.nodes if n.label == "assign L2")
    close_idx = next(n.idx for n in cfg.nodes if n.label == "expr L7")
    # No path from the open to the exit can skip the finally suite.
    assert not cfg.exists_path(open_idx, cfg.exit, avoiding={close_idx})


# ----------------------------------------------------------------------
# reaching definitions / use-def chains
# ----------------------------------------------------------------------

def test_reaching_definitions_merge_at_join():
    cfg = cfg_of("""\
        def f(x):
            if x > 0:
                a = 1
            else:
                a = 2
            return a
    """)
    ret_idx = next(n.idx for n in cfg.nodes
                   if n.label.startswith("return"))
    chains = cfg.use_defs()[ret_idx]
    # Both branch definitions of `a` may reach the return.
    assert len(chains["a"]) == 2


def test_loop_carried_definition_reaches_its_own_test():
    cfg = cfg_of("""\
        def f(n):
            i = 0
            while i < n:
                i += 1
            return i
    """)
    test_idx = next(n.idx for n in cfg.nodes if n.kind == "test")
    chains = cfg.use_defs()[test_idx]
    assert len(chains["i"]) == 2  # initial def and the loop-carried one


def test_parameters_bind_like_definitions():
    cfg = cfg_of("""\
        def f(x):
            return x
    """)
    ret_idx = next(n.idx for n in cfg.nodes
                   if n.label.startswith("return"))
    chains = cfg.use_defs()[ret_idx]
    params_idx = next(n.idx for n in cfg.nodes if n.label == "params")
    assert chains["x"] == {params_idx}


def test_nested_function_body_is_not_an_outer_use():
    cfg = cfg_of("""\
        def f(xs):
            total = 0
            g = lambda v: v + hidden
            return g(xs) + total
    """)
    ret_idx = next(n.idx for n in cfg.nodes
                   if n.label.startswith("return"))
    chains = cfg.use_defs()[ret_idx]
    assert "hidden" not in chains  # inside the lambda's scope, not ours


def test_build_cfg_accepts_lambda():
    import ast

    tree = ast.parse("g = lambda v: v + 1")
    lam = tree.body[0].value
    cfg = build_cfg(lam)
    assert cfg.name == "<lambda>"
    assert cfg.exit in cfg.reachable_from(cfg.entry)


def test_cfg_for_source_unknown_function_raises():
    with pytest.raises(ValueError):
        cfg_for_source("def g(): pass", "f")
