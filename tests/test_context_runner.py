"""Tests for PSGraphContext, GraphRunner and cross-path consistency."""

import numpy as np
import pytest

from repro.common.config import ClusterConfig
from repro.core.algorithms import FastUnfolding, Line, PageRank
from repro.core.context import PSGraphContext
from repro.core.ops import edges_from_arrays
from repro.core.runner import GraphRunner
from repro.datasets.generators import community_graph, powerlaw_graph
from repro.datasets.tencent import write_edges


def make_psg(**kwargs):
    cluster = ClusterConfig(
        num_executors=3, executor_mem_bytes=1 << 40,
        num_servers=2, server_mem_bytes=1 << 40,
    )
    return PSGraphContext(cluster, **kwargs)


@pytest.fixture
def psg():
    ctx = make_psg()
    yield ctx
    ctx.stop()


class TestContext:
    def test_context_manager_stops(self):
        with make_psg() as ctx:
            rm = ctx.spark.resource_manager
            assert len(rm.containers()) > 0
        assert len(rm.containers()) == 0

    def test_double_stop_is_safe(self):
        ctx = make_psg()
        ctx.stop()
        ctx.stop()

    def test_create_dataframe(self, psg):
        df = psg.create_dataframe([(1, "a")], ["id", "x"])
        assert df.collect() == [{"id": 1, "x": "a"}]

    def test_sync_clocks_aligns_everything(self, psg):
        psg.spark.executors[0].container.clock.advance(3.0)
        psg.ps.servers[1].container.clock.advance(7.0)
        t = psg.sync_clocks()
        assert t >= 7.0
        assert psg.sim_time() >= 7.0

    def test_shared_metrics_and_hdfs(self, psg):
        assert psg.metrics is psg.spark.metrics
        assert psg.hdfs is psg.spark.hdfs

    def test_same_algorithm_twice_gets_unique_matrices(self, psg):
        src, dst = powerlaw_graph(30, 90, seed=71)
        edges = edges_from_arrays(psg.spark, src, dst)
        r1 = PageRank(max_iterations=2).transform(psg, edges)
        r2 = PageRank(max_iterations=2).transform(psg, edges)
        names = psg.ps.matrix_names()
        assert "pagerank" in names
        assert "pagerank-1" in names
        assert r1.output.count() == r2.output.count()


class TestRunner:
    def test_weighted_input_path(self, psg):
        src, dst, _ = community_graph(80, 3, avg_degree=8, seed=72)
        w = np.ones(len(src))
        write_edges(psg.hdfs, "/in/w", src, dst, num_files=3, weights=w)
        result = GraphRunner(psg).run(
            FastUnfolding(num_passes=2), "/in/w", weighted=True
        )
        assert result.stats["modularity"] > 0.2

    def test_missing_input_raises(self, psg):
        with pytest.raises(FileNotFoundError):
            GraphRunner(psg).run(PageRank(), "/does/not/exist")

    def test_output_path_written(self, psg):
        src, dst = powerlaw_graph(30, 90, seed=73)
        write_edges(psg.hdfs, "/in/p", src, dst, num_files=2)
        GraphRunner(psg).run(PageRank(max_iterations=3), "/in/p", "/out/p")
        lines = psg.spark.text_file("/out/p").collect()
        assert len(lines) > 0
        v, _, r = lines[0].partition("\t")
        int(v)
        float(r)


class TestLinePathsAgree:
    def test_psfunc_and_pull_paths_identical(self, psg):
        """Both LINE update paths compute the same math (Sec. IV-D is a
        communication optimization, not an approximation)."""
        src, dst = powerlaw_graph(40, 200, seed=74)
        results = {}
        for use_psfunc in (True, False):
            ctx = make_psg()
            try:
                edges = edges_from_arrays(ctx.spark, src, dst)
                r = Line(dim=8, epochs=2, batch_size=64, seed=99,
                         use_psfunc=use_psfunc).transform(ctx, edges)
                emb = r.stats["embedding"]
                n = int(max(src.max(), dst.max())) + 1
                results[use_psfunc] = (
                    emb.pull_rows(np.arange(n)).copy(),
                    r.stats["epoch_losses"],
                )
            finally:
                ctx.stop()
        vecs_a, loss_a = results[True]
        vecs_b, loss_b = results[False]
        np.testing.assert_allclose(loss_a, loss_b, rtol=1e-5)
        np.testing.assert_allclose(vecs_a, vecs_b, rtol=1e-3, atol=1e-6)
