"""Baseline, SARIF, and incremental-cache behavior of the linter.

The SARIF checks validate the emitted log against the structural core
of the 2.1.0 schema (required properties and types, hand-rolled —
the CI image carries no ``jsonschema``); the cache tests assert the
parse counter, which is the property the CI timing budget rests on.
"""

import json
import textwrap
from pathlib import Path

from repro.lint.baseline import (
    apply_baseline,
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.lint.cli import main
from repro.lint.engine import LintEngine, lint_tree
from repro.lint.rules import Violation, get_rules
from repro.lint.sarif import SARIF_VERSION, format_sarif, to_sarif


def _write(tmp_path: Path, rel: str, source: str) -> Path:
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def _violation(rule="SIM103", path="dataflow/fake.py", line=4,
               message="`gather` moves bytes"):
    return Violation(rule, path, line, 0, message)


# ----------------------------------------------------------------------
# baseline
# ----------------------------------------------------------------------

def test_baseline_roundtrip(tmp_path):
    vs = [_violation(), _violation(line=9)]  # same fingerprint, count 2
    path = tmp_path / "baseline.json"
    entries = write_baseline(vs, path)
    assert entries == {fingerprint(vs[0]): 2}
    assert load_baseline(path) == entries


def test_apply_baseline_budgets_per_fingerprint(tmp_path):
    accepted = _violation()
    entries = {fingerprint(accepted): 1}
    # One matching finding is absorbed; the second identical one and
    # the unrelated one are new.
    vs = [accepted, _violation(line=30),
          _violation(rule="SIM105", message="leak")]
    fresh, suppressed, stale = apply_baseline(vs, entries)
    assert suppressed == 1
    assert [v.rule_id for v in fresh] == ["SIM103", "SIM105"]
    assert stale == []


def test_apply_baseline_reports_stale_entries():
    gone = _violation(message="fixed long ago")
    fresh, suppressed, stale = apply_baseline(
        [], {fingerprint(gone): 1})
    assert fresh == [] and suppressed == 0
    assert stale == [fingerprint(gone)]


def test_fingerprint_ignores_line_numbers():
    assert fingerprint(_violation(line=4)) == fingerprint(_violation(line=40))
    assert fingerprint(_violation(message="a")) \
        != fingerprint(_violation(message="b"))


# ----------------------------------------------------------------------
# SARIF 2.1.0 structural validation
# ----------------------------------------------------------------------

def _validate_sarif_core(doc):
    """Required-property subset of the SARIF 2.1.0 schema."""
    assert doc["version"] == SARIF_VERSION == "2.1.0"
    assert doc["$schema"].endswith("sarif-schema-2.1.0.json")
    assert isinstance(doc["runs"], list) and doc["runs"]
    for run in doc["runs"]:
        driver = run["tool"]["driver"]  # tool.driver is required
        assert isinstance(driver["name"], str) and driver["name"]
        for rule in driver.get("rules", []):
            assert isinstance(rule["id"], str)
            assert isinstance(rule["shortDescription"]["text"], str)
            assert rule["defaultConfiguration"]["level"] in (
                "none", "note", "warning", "error")
        for result in run.get("results", []):
            assert isinstance(result["message"]["text"], str)
            assert result["level"] in ("none", "note", "warning", "error")
            if "ruleIndex" in result:
                assert driver["rules"][result["ruleIndex"]]["id"] \
                    == result["ruleId"]
            for loc in result.get("locations", []):
                phys = loc["physicalLocation"]
                uri = phys["artifactLocation"]["uri"]
                assert isinstance(uri, str) and "\\" not in uri
                region = phys["region"]
                assert region["startLine"] >= 1   # 1-based per spec
                assert region["startColumn"] >= 1


def test_sarif_log_validates_and_maps_findings():
    rules = get_rules()
    vs = [
        _violation(),
        _violation(rule="SIM105", path="obs\\tracer.py", line=0,
                   message="leak"),
    ]
    doc = to_sarif(vs, rules)
    _validate_sarif_core(doc)
    results = doc["runs"][0]["results"]
    assert [r["ruleId"] for r in results] == ["SIM103", "SIM105"]
    # Windows separators are normalized, 0-based cols shift to 1-based,
    # line 0 (whole-file findings) clamps to the schema minimum of 1.
    assert results[1]["locations"][0]["physicalLocation"][
        "artifactLocation"]["uri"] == "obs/tracer.py"
    assert results[1]["locations"][0]["physicalLocation"][
        "region"]["startLine"] == 1
    rule_ids = [r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]]
    assert "SIM001" in rule_ids and "SIM103" in rule_ids


def test_format_sarif_is_json_with_trailing_newline():
    text = format_sarif([_violation()], get_rules())
    assert text.endswith("\n")
    _validate_sarif_core(json.loads(text))


def test_sarif_empty_run_is_still_valid():
    _validate_sarif_core(to_sarif([], get_rules()))


# ----------------------------------------------------------------------
# incremental cache
# ----------------------------------------------------------------------

_CLEAN = """\
    def scale(values, k):
        return [v * k for v in values]
"""

_DIRTY = """\
    import numpy as np

    def gather(tctx, parts):
        out = np.concatenate(parts)
        return out
"""


def _tree(tmp_path):
    _write(tmp_path, "pkg/dataflow/a.py", _CLEAN)
    _write(tmp_path, "pkg/dataflow/b.py", _DIRTY)
    _write(tmp_path, "pkg/dataflow/c.py", "VERSION = 1\n")
    return tmp_path / "pkg"


def test_cold_run_parses_everything_and_finds(tmp_path):
    root = _tree(tmp_path)
    cache = tmp_path / "cache.json"
    eng = LintEngine(get_rules())
    vs, stats = lint_tree([root], cache_path=cache, engine=eng)
    assert stats == {"files": 3, "parsed": 3, "reused": 0}
    assert [v.rule_id for v in vs] == ["SIM103"]
    assert cache.exists()


def test_warm_run_parses_nothing(tmp_path):
    root = _tree(tmp_path)
    cache = tmp_path / "cache.json"
    lint_tree([root], cache_path=cache)
    eng = LintEngine(get_rules())
    vs, stats = lint_tree([root], cache_path=cache, engine=eng)
    assert stats == {"files": 3, "parsed": 0, "reused": 3}
    # Cached verdicts replay identically, including the finding.
    assert [v.rule_id for v in vs] == ["SIM103"]


def test_touched_file_is_the_only_reparse(tmp_path):
    root = _tree(tmp_path)
    cache = tmp_path / "cache.json"
    lint_tree([root], cache_path=cache)
    # A comment-only edit changes the hash but no function summary,
    # so the digest holds and the other files replay from cache.
    target = root / "dataflow" / "c.py"
    target.write_text(target.read_text() + "# release notes\n")
    eng = LintEngine(get_rules())
    vs, stats = lint_tree([root], cache_path=cache, engine=eng)
    assert stats == {"files": 3, "parsed": 1, "reused": 2}
    assert [v.rule_id for v in vs] == ["SIM103"]


def test_summary_change_invalidates_cross_file_verdicts(tmp_path):
    root = _tree(tmp_path)
    cache = tmp_path / "cache.json"
    _write(tmp_path, "pkg/dataflow/d.py", """\
        from repro.dataflow.b import gather

        def stage(tctx, parts):
            return gather(tctx, parts)
    """)
    lint_tree([root], cache_path=cache)
    # Fix b.py: gather now charges.  d.py's bytes no longer flow from
    # an unmetered callee, so its verdict must be recomputed even
    # though d.py itself did not change.
    _write(tmp_path, "pkg/dataflow/b.py", """\
        import numpy as np

        def gather(tctx, parts):
            out = np.concatenate(parts)
            tctx.cost.cpu_s += out.nbytes * 1e-9
            return out
    """)
    eng = LintEngine(get_rules())
    vs, stats = lint_tree([root], cache_path=cache, engine=eng)
    assert vs == []
    assert stats["files"] == 4
    assert stats["reused"] == 0       # digest moved: no verdict reuse
    assert stats["parsed"] == 4       # unchanged files re-checked too


def test_cache_rejected_on_ruleset_change(tmp_path):
    root = _tree(tmp_path)
    cache = tmp_path / "cache.json"
    lint_tree([root], cache_path=cache, rules=get_rules())
    eng = LintEngine(get_rules(disable=["SIM103"]))
    vs, stats = lint_tree([root], cache_path=cache, engine=eng)
    assert stats["parsed"] == 3       # different ruleset: cold start
    assert vs == []


def test_corrupt_cache_is_ignored(tmp_path):
    root = _tree(tmp_path)
    cache = tmp_path / "cache.json"
    cache.write_text("{not json", encoding="utf-8")
    vs, stats = lint_tree([root], cache_path=cache)
    assert stats["parsed"] == 3
    assert [v.rule_id for v in vs] == ["SIM103"]
    json.loads(cache.read_text())     # rewritten as a valid cache


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------

def test_cli_sarif_file_output(tmp_path, capsys):
    _write(tmp_path, "pkg/dataflow/b.py", _DIRTY)
    out = tmp_path / "findings.sarif"
    code = main([str(tmp_path / "pkg"), "--sarif", str(out),
                 "--baseline", ""])
    assert code == 1
    doc = json.loads(out.read_text())
    _validate_sarif_core(doc)
    assert [r["ruleId"] for r in doc["runs"][0]["results"]] == ["SIM103"]


def test_cli_sarif_stdout(tmp_path, capsys):
    _write(tmp_path, "pkg/dataflow/a.py", _CLEAN)
    code = main([str(tmp_path / "pkg"), "--sarif", "-", "--baseline", ""])
    assert code == 0
    _validate_sarif_core(json.loads(capsys.readouterr().out))


def test_cli_write_then_apply_baseline(tmp_path, capsys):
    _write(tmp_path, "pkg/dataflow/b.py", _DIRTY)
    baseline = tmp_path / "baseline.json"
    assert main([str(tmp_path / "pkg"), "--write-baseline",
                 "--baseline", str(baseline)]) == 0
    capsys.readouterr()
    # The accepted finding no longer fails the run...
    assert main([str(tmp_path / "pkg"),
                 "--baseline", str(baseline)]) == 0
    assert "1 baselined finding suppressed" in capsys.readouterr().out
    # ...but a new one still does.
    _write(tmp_path, "pkg/dataflow/e.py", """\
        import random

        def place(ps, keys):
            jitter = random.random()
            ps.push(keys, jitter)
    """)
    assert main([str(tmp_path / "pkg"), "--enable",
                 "SIM103,SIM104", "--baseline", str(baseline)]) == 1


def test_cli_missing_baseline_is_usage_error(tmp_path, capsys):
    _write(tmp_path, "pkg/dataflow/a.py", _CLEAN)
    code = main([str(tmp_path / "pkg"),
                 "--baseline", str(tmp_path / "nope.json")])
    assert code == 2
    assert "no such baseline" in capsys.readouterr().err


def test_cli_stale_baseline_entry_noted(tmp_path, capsys):
    _write(tmp_path, "pkg/dataflow/a.py", _CLEAN)
    baseline = tmp_path / "baseline.json"
    write_baseline([_violation()], baseline)
    code = main([str(tmp_path / "pkg"), "--baseline", str(baseline)])
    assert code == 0
    assert "stale baseline entry" in capsys.readouterr().err


def test_cli_cache_flag_roundtrip(tmp_path, capsys):
    _write(tmp_path, "pkg/dataflow/a.py", _CLEAN)
    cache = tmp_path / ".lint-cache.json"
    args = [str(tmp_path / "pkg"), "--cache", str(cache), "--baseline", ""]
    assert main(args) == 0
    doc = json.loads(cache.read_text())
    assert doc["version"] == 1 and doc["files"]
    assert main(args) == 0            # warm run replays cleanly


def test_cli_unknown_rule_lists_known_ids(tmp_path, capsys):
    _write(tmp_path, "pkg/dataflow/a.py", _CLEAN)
    code = main([str(tmp_path / "pkg"), "--enable", "SIM999"])
    assert code == 2
    err = capsys.readouterr().err
    assert "unknown rule" in err and "SIM103" in err


def test_cli_list_rules_includes_flow_tier(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("SIM001", "SIM101", "SIM102", "SIM103",
                    "SIM104", "SIM105"):
        assert rule_id in out
