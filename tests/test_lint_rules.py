"""Static rule fixtures: each rule fires on its target pattern, stays
quiet on the sanctioned alternative, and honors suppression comments."""

import textwrap

import pytest

from repro.lint.engine import LintEngine, lint_paths, module_relpath
from repro.lint.rules import RULES, get_rules


def lint(source: str, relpath: str = "dataflow/fake.py"):
    """Lint a source snippet as if it lived at ``relpath`` in the pkg."""
    engine = LintEngine(get_rules())
    return engine.lint_source(textwrap.dedent(source), relpath, relpath)


def rule_ids(violations):
    return [v.rule_id for v in violations]


# ----------------------------------------------------------------------
# SIM001 wall clock
# ----------------------------------------------------------------------

def test_sim001_flags_time_time():
    vs = lint("""\
        import time
        def f():
            return time.time()
    """)
    assert rule_ids(vs) == ["SIM001"]
    assert vs[0].line == 3


def test_sim001_flags_from_import_and_datetime_now():
    vs = lint("""\
        from time import perf_counter
        import datetime
        t0 = perf_counter()
        now = datetime.datetime.now()
    """)
    # the from-import itself plus both wall-clock reads
    assert rule_ids(vs) == ["SIM001", "SIM001", "SIM001"]
    assert [v.line for v in vs] == [1, 3, 4]


def test_sim001_allows_simclock_and_sleep_free_time_use():
    vs = lint("""\
        from repro.common.simclock import SimClock
        clock = SimClock()
        t = clock.now_s
    """)
    assert vs == []


def test_sim001_exempt_under_common():
    vs = lint("""\
        import time
        t = time.time()
    """, relpath="common/simclock.py")
    assert vs == []


# ----------------------------------------------------------------------
# SIM002 ambient randomness
# ----------------------------------------------------------------------

def test_sim002_flags_import_random():
    vs = lint("""\
        def sample():
            import random
            return random.random()
    """)
    assert "SIM002" in rule_ids(vs)


def test_sim002_flags_np_random_module_functions():
    vs = lint("""\
        import numpy as np
        x = np.random.rand(3)
    """)
    assert rule_ids(vs) == ["SIM002"]


def test_sim002_allows_seeded_generator_api():
    vs = lint("""\
        import numpy as np
        from repro.common.rng import make_rng
        rng = make_rng(7)
        gen = np.random.default_rng(7)
    """)
    assert vs == []


def test_sim002_exempt_in_rng_shim():
    vs = lint("""\
        import numpy as np
        def make_rng(seed):
            return np.random.default_rng(seed)
    """, relpath="common/rng.py")
    assert vs == []


# ----------------------------------------------------------------------
# SIM003 direct IO inside sim subsystems
# ----------------------------------------------------------------------

def test_sim003_flags_open_and_os_io():
    vs = lint("""\
        import os
        def dump(path, data):
            with open(path, "w") as fh:
                fh.write(data)
            os.remove(path)
    """, relpath="hdfs/filesystem.py")
    assert rule_ids(vs) == ["SIM003", "SIM003"]


def test_sim003_flags_pathlib_and_environ():
    vs = lint("""\
        import os
        import pathlib
        root = pathlib.Path("/tmp")
        home = os.environ["HOME"]
    """, relpath="ps/server.py")
    assert rule_ids(vs) == ["SIM003", "SIM003"]


def test_sim003_ignores_code_outside_sim_subsystems():
    vs = lint("""\
        def read(path):
            with open(path) as fh:
                return fh.read()
    """, relpath="experiments/report.py")
    assert vs == []


def test_sim003_exempt_paths():
    src = """\
        def export(path, payload):
            with open(path, "w") as fh:
                fh.write(payload)
    """
    assert lint(src, relpath="obs/export.py") == []
    assert lint(src, relpath="cli.py") == []


# ----------------------------------------------------------------------
# SIM004 unordered iteration
# ----------------------------------------------------------------------

def test_sim004_flags_set_iteration():
    vs = lint("""\
        def partition(keys):
            out = []
            for k in set(keys):
                out.append(k)
            return out
    """)
    assert rule_ids(vs) == ["SIM004"]


def test_sim004_flags_set_literal_in_comprehension_and_list():
    vs = lint("""\
        pairs = [(k, 1) for k in {"a", "b"}]
        ordered = list({1, 2, 3})
    """)
    assert rule_ids(vs) == ["SIM004", "SIM004"]


def test_sim004_allows_sorted_and_order_insensitive_consumers():
    vs = lint("""\
        def stable(keys):
            n = len(set(keys))
            for k in sorted(set(keys)):
                yield k, n
    """)
    assert vs == []


def test_sim004_only_in_sim_subsystems():
    vs = lint("""\
        for k in {1, 2}:
            print(k)
    """, relpath="datasets/generators.py")
    assert vs == []


# ----------------------------------------------------------------------
# SIM005 closure mutation in RDD lambdas
# ----------------------------------------------------------------------

def test_sim005_flags_lambda_mutating_captured_list():
    vs = lint("""\
        def job(rdd):
            seen = []
            rdd.map(lambda x: seen.append(x))
    """)
    assert rule_ids(vs) == ["SIM005"]


def test_sim005_flags_named_function_with_nonlocal():
    vs = lint("""\
        def job(rdd):
            total = 0
            def bump(x):
                nonlocal total
                total += x
                return x
            return rdd.map(bump)
    """)
    assert "SIM005" in rule_ids(vs)


def test_sim005_flags_inplace_reorder_of_parameter():
    vs = lint("""\
        def job(rdd):
            def scramble(part):
                part.sort()
                return part
            return rdd.map_partitions(scramble)
    """)
    assert "SIM005" in rule_ids(vs)


def test_sim005_allows_pure_lambdas():
    vs = lint("""\
        def job(rdd):
            k = 3
            return rdd.map(lambda x: x * k).filter(lambda x: x > 0)
    """)
    assert vs == []


def test_sim005_allows_local_mutation_inside_function():
    vs = lint("""\
        def job(rdd):
            def dedupe(part):
                out = []
                for x in part:
                    out.append(x)
                return out
            return rdd.map_partitions(dedupe)
    """)
    assert vs == []


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------

def test_line_suppression():
    vs = lint("""\
        import time
        t = time.time()  # repro-lint: disable=SIM001
    """)
    assert vs == []


def test_line_suppression_is_rule_specific():
    vs = lint("""\
        import time
        t = time.time()  # repro-lint: disable=SIM002
    """)
    assert rule_ids(vs) == ["SIM001"]


def test_file_suppression():
    vs = lint("""\
        # repro-lint: disable-file=SIM001
        import time
        a = time.time()
        b = time.monotonic()
    """)
    assert vs == []


def test_file_suppression_multiple_rules():
    vs = lint("""\
        # repro-lint: disable-file=SIM001, SIM004
        import time
        t = time.time()
        for k in {1, 2}:
            pass
    """)
    assert vs == []


# ----------------------------------------------------------------------
# engine mechanics
# ----------------------------------------------------------------------

def test_syntax_error_reports_sim000():
    vs = lint("def broken(:\n")
    assert rule_ids(vs) == ["SIM000"]


def test_unknown_rule_raises():
    with pytest.raises(KeyError):
        get_rules(enable=["SIM999"])


def test_disable_filters_ruleset():
    rules = get_rules(disable=["SIM005"])
    assert "SIM005" not in {r.id for r in rules}
    assert len(rules) == len(RULES) - 1


def test_module_relpath_finds_package_root(tmp_path):
    p = tmp_path / "src" / "repro" / "dataflow" / "rdd.py"
    assert module_relpath(p, tmp_path) == "dataflow/rdd.py"


def test_lint_paths_walks_directories(tmp_path):
    pkg = tmp_path / "repro" / "ps"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text("import time\nt = time.time()\n")
    (pkg / "good.py").write_text("x = 1\n")
    vs = lint_paths([str(tmp_path)], get_rules())
    assert rule_ids(vs) == ["SIM001"]


def test_repo_package_is_clean():
    """The shipped package must lint clean (satellite #1's invariant)."""
    import pathlib

    import repro

    pkg_dir = pathlib.Path(repro.__file__).parent
    assert lint_paths([str(pkg_dir)], get_rules()) == []
