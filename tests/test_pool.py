"""Unit tests for ``repro.dataflow.pool`` and its scheduler integration.

The equivalence suite (tests/test_batch_equivalence.py) proves the headline
contract — serial and pooled runs are bit-identical.  This file pins the
mechanisms underneath: the shared-memory column transport, the metric
event recorder, package encode/decode, the eligibility gates that keep
coupled stages serial, and the fallback paths that turn every pool
surprise back into the unchanged serial loop.
"""

import numpy as np
import pytest

from repro.common.batch import RecordBatch, shm_export, shm_import
from repro.common.config import ClusterConfig
from repro.common.metrics import (
    POOL_PACKAGES_INVALID,
    POOL_PICKLE_FALLBACKS,
    POOL_SHM_BYTES,
    POOL_STAGES_PARALLEL,
    POOL_TASKS_DISPATCHED,
    MetricsRegistry,
)
from repro.common.simclock import TaskCost
from repro.dataflow.context import SparkContext
from repro.dataflow.pool import (
    TaskPackage,
    TaskPool,
    _decode_package,
    _encode_package,
    default_parallel,
    set_default_parallel,
)

POOL_PREFIX = "dataflow.pool."


def make_ctx(parallel=0, **kwargs):
    cluster = ClusterConfig(num_executors=4, executor_mem_bytes=1 << 40)
    return SparkContext(cluster, parallel=parallel, **kwargs)


def drop_pool(snapshot):
    return {k: v for k, v in snapshot.items()
            if not k.startswith(POOL_PREFIX)}


# ----------------------------------------------------------------------
# shared-memory column transport
# ----------------------------------------------------------------------

class TestShmTransport:
    def test_roundtrip_1d(self):
        batches = [
            RecordBatch(np.arange(10, dtype=np.int64),
                        np.linspace(0.0, 1.0, 10)),
            RecordBatch(np.array([7, 7, 9], dtype=np.int64),
                        np.array([-1.5, 2.5, 0.0])),
        ]
        shm, nbytes, descs = shm_export(batches)
        try:
            assert nbytes > 0 and len(descs) == 2
        finally:
            shm.close()
        out = shm_import(shm.name, descs)
        assert len(out) == 2
        for a, b in zip(batches, out):
            np.testing.assert_array_equal(a.keys, b.keys)
            np.testing.assert_array_equal(a.values, b.values)
            assert b.values.dtype == a.values.dtype

    def test_roundtrip_2d_values(self):
        batch = RecordBatch(np.arange(5, dtype=np.int64),
                            np.arange(15, dtype=np.float64).reshape(5, 3))
        shm, _nbytes, descs = shm_export([batch])
        shm.close()
        (out,) = shm_import(shm.name, descs)
        assert out.values.shape == (5, 3)
        np.testing.assert_array_equal(out.values, batch.values)

    def test_roundtrip_empty_batch(self):
        batch = RecordBatch(np.array([], dtype=np.int64),
                            np.array([], dtype=np.float64))
        shm, nbytes, descs = shm_export([batch])
        shm.close()
        (out,) = shm_import(shm.name, descs)
        assert len(out.keys) == 0 and len(out.values) == 0

    def test_import_unlinks_segment(self):
        from multiprocessing import shared_memory

        batch = RecordBatch(np.arange(4, dtype=np.int64),
                            np.arange(4, dtype=np.float64))
        shm, _nbytes, descs = shm_export([batch])
        shm.close()
        shm_import(shm.name, descs)
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=shm.name)

    def test_export_rejects_boxed_batches(self):
        boxed = RecordBatch(np.arange(3, dtype=np.int64),
                            [object(), object(), object()])
        assert not boxed.is_columnar
        with pytest.raises(ValueError):
            shm_export([boxed])


# ----------------------------------------------------------------------
# metric event recording & replay
# ----------------------------------------------------------------------

class TestMetricsRecording:
    def test_replay_reproduces_every_unit(self):
        src = MetricsRegistry()
        src.begin_recording()
        src.inc("dataflow.a", 2.0)
        src.inc("dataflow.a", 0.5)
        src.observe("dataflow.h", 10.0)
        src.set_gauge("dataflow.g", 3.0)
        src.set_max("dataflow.m", 7.0)
        events = src.end_recording()
        assert len(events) == 5

        dst = MetricsRegistry()
        dst.replay(events)
        assert dst.snapshot() == src.snapshot()

    def test_replay_inc_is_state_independent(self):
        # The replayed additions must be the same IEEE operations the
        # original inc calls performed, regardless of prior counter state.
        src = MetricsRegistry()
        src.inc("dataflow.a", 0.1)
        src.begin_recording()
        src.inc("dataflow.a", 0.2)
        events = src.end_recording()
        dst = MetricsRegistry()
        dst.inc("dataflow.a", 0.1)
        dst.replay(events)
        assert dst.get("dataflow.a") == src.get("dataflow.a")

    def test_end_recording_stops_capture(self):
        reg = MetricsRegistry()
        reg.begin_recording()
        reg.inc("dataflow.a")
        events = reg.end_recording()
        reg.inc("dataflow.b")
        assert [name for _k, name, _v in events] == ["dataflow.a"]

    def test_replay_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            MetricsRegistry().replay([("bogus", "dataflow.a", 1.0)])


# ----------------------------------------------------------------------
# package encode / decode
# ----------------------------------------------------------------------

class TestPackageCodec:
    def test_columnar_result_travels_by_shm(self):
        batch = RecordBatch(np.arange(6, dtype=np.int64),
                            np.arange(6, dtype=np.float64))
        pkg = TaskPackage(partition=0, executor_index=0, cost=TaskCost(),
                          result=[batch])
        message, shm = _encode_package(pkg)
        assert shm is not None
        shm.close()
        metrics = MetricsRegistry()
        out = _decode_package(message, metrics)
        np.testing.assert_array_equal(out.result[0].values, batch.values)
        assert metrics.get(POOL_SHM_BYTES) > 0
        assert metrics.get(POOL_PICKLE_FALLBACKS) == 0

    def test_boxed_batch_falls_back_to_pickle(self):
        boxed = RecordBatch(np.arange(3, dtype=np.int64),
                            ["a", "b", "c"])
        assert not boxed.is_columnar
        pkg = TaskPackage(partition=1, executor_index=1, cost=TaskCost(),
                          result=[boxed])
        message, shm = _encode_package(pkg)
        assert shm is None
        metrics = MetricsRegistry()
        out = _decode_package(message, metrics)
        assert list(out.result[0].values) == ["a", "b", "c"]
        assert metrics.get(POOL_PICKLE_FALLBACKS) == 1
        assert metrics.get(POOL_SHM_BYTES) == 0


# ----------------------------------------------------------------------
# pool construction & defaults
# ----------------------------------------------------------------------

class TestPoolConfig:
    def test_rejects_single_worker(self):
        with pytest.raises(ValueError):
            TaskPool(1)

    def test_rejects_unknown_start_method(self):
        with pytest.raises(ValueError):
            TaskPool(4, start_method="thread")

    def test_process_default_round_trips(self):
        assert default_parallel() == 0
        try:
            set_default_parallel(4)
            ctx = make_ctx(parallel=None)
            try:
                assert ctx.pool is not None and ctx.pool.workers == 4
            finally:
                ctx.stop()
        finally:
            set_default_parallel(0)
        ctx = make_ctx(parallel=None)
        try:
            assert ctx.pool is None
        finally:
            ctx.stop()


# ----------------------------------------------------------------------
# eligibility: coupled stages never fork
# ----------------------------------------------------------------------

class TestEligibility:
    def _dispatched(self, ctx):
        return ctx.metrics.get(POOL_TASKS_DISPATCHED)

    def test_cached_lineage_stays_serial(self):
        ctx = make_ctx(parallel=4)
        try:
            rdd = ctx.parallelize(range(100), 4).map(lambda x: x * 2)
            rdd.cache()
            assert rdd.count() == 100
            assert rdd.count() == 100  # served from the cache
            # Cached lineage is gated before the pool is even consulted
            # (pool_ok=False at the run_job call site), so nothing is
            # ever dispatched.
            assert self._dispatched(ctx) == 0
        finally:
            ctx.stop()

    def test_task_hooks_stay_serial(self):
        ctx = make_ctx(parallel=4)
        try:
            ctx.add_task_hook(lambda *a: None)
            assert ctx.parallelize(range(100), 4).count() == 100
            assert self._dispatched(ctx) == 0
        finally:
            ctx.stop()

    def test_speculation_stays_serial(self):
        ctx = make_ctx(parallel=4, speculation=True)
        try:
            assert ctx.parallelize(range(100), 4).count() == 100
            assert self._dispatched(ctx) == 0
        finally:
            ctx.stop()

    def test_dead_executor_stays_serial(self):
        ctx = make_ctx(parallel=4)
        try:
            ctx.kill_executor(0)
            assert ctx.parallelize(range(100), 4).count() == 100
            assert self._dispatched(ctx) == 0
        finally:
            ctx.stop()

    def test_single_partition_stays_serial(self):
        ctx = make_ctx(parallel=4)
        try:
            assert ctx.parallelize(range(100), 1).count() == 100
            assert self._dispatched(ctx) == 0
        finally:
            ctx.stop()

    def test_spawn_probe_falls_back_to_serial(self):
        # Non-fork start methods must pickle the driver graph, which the
        # lambda-laden lineage cannot; the probe declines and the stage
        # runs serially with identical results.
        ctx = make_ctx(parallel=4, pool_start_method="spawn")
        try:
            got = ctx.parallelize(range(100), 4).map(lambda x: x + 1).sum()
            assert got == sum(range(1, 101))
            assert self._dispatched(ctx) == 0
        finally:
            ctx.stop()

    def test_eligible_stage_engages(self):
        ctx = make_ctx(parallel=4)
        try:
            assert ctx.parallelize(range(100), 4).count() == 100
            assert self._dispatched(ctx) > 0
            assert ctx.metrics.get(POOL_STAGES_PARALLEL) > 0
        finally:
            ctx.stop()


# ----------------------------------------------------------------------
# fallback: every pool surprise degrades to the serial loop
# ----------------------------------------------------------------------

class TestFallback:
    def test_task_exception_reproduced_serially(self):
        def boom(x):
            if x == 13:
                raise ValueError("boom on 13")
            return x

        def run(parallel):
            ctx = make_ctx(parallel=parallel)
            try:
                with pytest.raises(ValueError, match="boom on 13"):
                    ctx.parallelize(range(100), 4).map(boom).collect()
                return ctx.sim_time()
            finally:
                ctx.stop()

        assert run(0) == run(4)

    def test_foreign_metric_event_invalidates_package(self):
        # A task closure that touches non-dataflow metrics mutated state
        # the fork kept private; the package is rejected and the stage
        # reruns serially, applying the increment against real state.
        def run(parallel):
            ctx = make_ctx(parallel=parallel)
            try:
                metrics = ctx.metrics

                def touch(x):
                    metrics.inc("custom.sideeffect")
                    return x + 1

                got = ctx.parallelize(range(40), 4).map(touch).collect()
                return got, drop_pool(ctx.metrics.snapshot()), \
                    ctx.metrics.get(POOL_PACKAGES_INVALID), ctx.sim_time()
            finally:
                ctx.stop()

        s_got, s_snap, _s_invalid, s_time = run(0)
        p_got, p_snap, p_invalid, p_time = run(4)
        assert s_got == p_got
        assert s_snap == p_snap
        assert s_time == p_time
        assert s_snap["custom.sideeffect"] == 40.0
        assert p_invalid >= 1

    def test_unpicklable_result_falls_back(self):
        # The worker cannot ship a lambda-bearing result; it sends an
        # error package instead and the driver reruns the stage serially.
        def run(parallel):
            ctx = make_ctx(parallel=parallel)
            try:
                got = ctx.parallelize(range(8), 4).map(
                    lambda x: (x, lambda: x)).collect()
                return ([k for k, _f in got], ctx.sim_time(),
                        ctx.metrics.get(POOL_PACKAGES_INVALID))
            finally:
                ctx.stop()

        s_keys, s_time, _ = run(0)
        p_keys, p_time, p_invalid = run(4)
        assert s_keys == p_keys
        assert sorted(s_keys) == list(range(8))
        assert s_time == p_time
        assert p_invalid >= 1
