"""Streaming-mutation plane: graph deltas, incremental recompute, cache.

Covers the full stack of the streaming plane:

* ``NeighborTableStore`` / ``PSNeighborTable`` removal paths (including
  the compacted-CSR reopen that used to lose frozen data),
* :class:`~repro.streaming.graph.StreamingGraph` delta semantics,
* incremental PageRank vs the batch pipeline (correctness and the
  <25%-of-full sim-cost acceptance bound),
* incremental connected components across merges, splits and drops,
* dirty-only online embedding refresh,
* the window engine end to end,
* the :class:`~repro.ps.cache.PullCache` indexed-invalidate regression.
"""

import time
from collections import OrderedDict

import numpy as np
import pytest

from repro.common.config import MB, ClusterConfig
from repro.common.metrics import STREAM_WINDOWS
from repro.core.algorithms.pagerank import reference_delta_pagerank
from repro.core.context import PSGraphContext
from repro.datasets.generators import powerlaw_graph
from repro.ingest.kafka import EdgeStreamConsumer, KafkaTopic
from repro.ingest.mutations import edge_adds, edge_dels, vertex_dels
from repro.ps.cache import PullCache
from repro.streaming import (
    IncrementalComponents,
    IncrementalPageRank,
    OnlineEmbeddingRefresh,
    StreamingEngine,
    StreamingGraph,
)


@pytest.fixture()
def ctx():
    cluster = ClusterConfig(
        num_executors=4, executor_mem_bytes=256 * MB,
        num_servers=2, server_mem_bytes=256 * MB,
    )
    c = PSGraphContext(cluster, app_name="test-streaming")
    yield c
    c.stop()


def _ids(*vs):
    return np.asarray(vs, dtype=np.int64)


# ---------------------------------------------------------------------------
# PS neighbor-table removal paths
# ---------------------------------------------------------------------------


class TestNeighborTableRemoval:
    def test_remove_subset(self, ctx):
        t = ctx.ps.create_neighbor_table("t", 10)
        t.push(_ids(1), [_ids(2, 3, 4)])
        t.remove(_ids(1), [_ids(3)])
        assert t.get(_ids(1))[0].tolist() == [2, 4]
        assert t.degrees(_ids(1)).tolist() == [2]

    def test_remove_absent_neighbor_is_noop(self, ctx):
        t = ctx.ps.create_neighbor_table("t", 10)
        t.push(_ids(1), [_ids(2)])
        t.remove(_ids(1), [_ids(9)])
        t.remove(_ids(5), [_ids(9)])  # vertex with no table at all
        assert t.get(_ids(1))[0].tolist() == [2]

    def test_remove_all_empties_table(self, ctx):
        t = ctx.ps.create_neighbor_table("t", 10)
        t.push(_ids(1), [_ids(2, 3)])
        t.remove(_ids(1), [_ids(2, 3)])
        assert t.get(_ids(1))[0].tolist() == []
        assert t.degrees(_ids(1)).tolist() == [0]

    def test_remove_after_compact_reopens_csr(self, ctx):
        # Regression: a write against a compacted store used to merge
        # against an empty dict, silently losing the frozen adjacency.
        t = ctx.ps.create_neighbor_table("t", 10)
        t.push(_ids(1, 2), [_ids(3, 4), _ids(5)])
        t.compact()
        t.remove(_ids(1), [_ids(4)])
        assert t.get(_ids(1))[0].tolist() == [3]
        assert t.get(_ids(2))[0].tolist() == [5]

    def test_drop_vertices(self, ctx):
        t = ctx.ps.create_neighbor_table("t", 10)
        t.push(_ids(1, 2), [_ids(3), _ids(4)])
        t.drop(_ids(1, 7))  # dropping an absent vertex is fine
        assert t.get(_ids(1))[0].tolist() == []
        assert t.get(_ids(2))[0].tolist() == [4]


# ---------------------------------------------------------------------------
# StreamingGraph delta semantics
# ---------------------------------------------------------------------------


class TestStreamingGraphApply:
    def test_add_dedupes_and_ignores_existing(self, ctx):
        g = StreamingGraph(ctx.ps, 10)
        g.apply(edge_adds(_ids(0), _ids(1)))
        delta = g.apply(edge_adds(_ids(0, 0, 2), _ids(1, 1, 3)))
        assert delta.num_added == 1  # only (2,3) is new
        assert g.num_edges == 2

    def test_remove_absent_edge_is_noop(self, ctx):
        g = StreamingGraph(ctx.ps, 10)
        g.apply(edge_adds(_ids(0), _ids(1)))
        delta = g.apply(edge_dels(_ids(4), _ids(5)))
        assert delta.num_removed == 0
        assert g.num_edges == 1

    def test_old_out_snapshots_pre_window_state(self, ctx):
        g = StreamingGraph(ctx.ps, 10)
        g.apply(edge_adds(_ids(0, 0), _ids(1, 2)))
        delta = g.apply(edge_adds(_ids(0), _ids(3))
                        + edge_dels(_ids(0), _ids(1)))
        assert delta.old_out[0].tolist() == [1, 2]
        assert g.out.get(_ids(0))[0].tolist() == [2, 3]

    def test_presence_crossings(self, ctx):
        g = StreamingGraph(ctx.ps, 10)
        d1 = g.apply(edge_adds(_ids(0), _ids(1)))
        assert d1.became_present.tolist() == [0, 1]
        d2 = g.apply(edge_dels(_ids(0), _ids(1)))
        assert d2.became_absent.tolist() == [0, 1]
        assert g.present_vertices().tolist() == []

    def test_same_window_add_then_remove(self, ctx):
        g = StreamingGraph(ctx.ps, 10)
        g.apply(edge_adds(_ids(0), _ids(1))
                + edge_dels(_ids(0), _ids(1)))
        assert g.num_edges == 0
        assert g.present_vertices().tolist() == []

    def test_vertex_drop_removes_both_directions(self, ctx):
        g = StreamingGraph(ctx.ps, 10)
        g.apply(edge_adds(_ids(0, 2, 1), _ids(1, 1, 3)))
        delta = g.apply(vertex_dels(_ids(1)))
        assert delta.dropped.tolist() == [1]
        removed = set(zip(delta.removed_src.tolist(),
                          delta.removed_dst.tolist()))
        assert removed == {(0, 1), (2, 1), (1, 3)}
        assert g.num_edges == 0
        # 0, 2, 3 lost their only edge and crossed to absent with it.
        assert g.present_vertices().tolist() == []

    def test_metrics_wired(self, ctx):
        g = StreamingGraph(ctx.ps, 10, metrics=ctx.metrics)
        g.apply(edge_adds(_ids(0), _ids(1)))
        assert ctx.metrics.get("streaming.edges.added") == 1


# ---------------------------------------------------------------------------
# incremental PageRank
# ---------------------------------------------------------------------------


def _edge_set(g):
    present = g.present_vertices()
    outs = g.out.get(present)
    src, dst = [], []
    for v, nb in zip(present.tolist(), outs):
        src.extend([v] * len(nb))
        dst.extend(nb.tolist())
    return np.asarray(src, dtype=np.int64), np.asarray(dst, dtype=np.int64)


class TestIncrementalPageRank:
    def test_matches_reference_across_windows(self, ctx):
        rng = np.random.default_rng(11)
        src, dst = powerlaw_graph(60, 240, seed=5)
        g = StreamingGraph(ctx.ps, 60)
        g.apply(edge_adds(src, dst))
        pr = IncrementalPageRank(g, tol=1e-10)
        pr.bootstrap()
        for _ in range(3):
            a_s = rng.integers(0, 60, 6)
            a_d = (a_s + 1 + rng.integers(0, 59, 6)) % 60
            cs, cd = _edge_set(g)
            ridx = rng.choice(len(cs), size=4, replace=False)
            delta = g.apply(edge_adds(a_s, a_d)
                            + edge_dels(cs[ridx], cd[ridx]))
            pr.update(delta)
        ids, ranks = pr.ranks()
        cs, cd = _edge_set(g)
        ref_ids, ref_ranks = reference_delta_pagerank(cs, cd, 300)
        assert ids.tolist() == ref_ids.tolist()
        np.testing.assert_allclose(ranks, ref_ranks, atol=1e-6)

    def test_vertex_drop_clears_state(self, ctx):
        g = StreamingGraph(ctx.ps, 10)
        g.apply(edge_adds(_ids(0, 1), _ids(1, 2)))
        pr = IncrementalPageRank(g, tol=1e-12)
        pr.bootstrap()
        delta = g.apply(vertex_dels(_ids(2)))
        pr.update(delta)
        ids, ranks = pr.ranks()
        assert 2 not in ids.tolist()
        assert float(pr.state.pull(_ids(2), col=0)[0]) == 0.0

    def test_empty_window_costs_nothing(self, ctx):
        g = StreamingGraph(ctx.ps, 10)
        g.apply(edge_adds(_ids(0), _ids(1)))
        pr = IncrementalPageRank(g)
        pr.bootstrap()
        t0 = ctx.sim_time()
        stats = pr.update(g.apply([]))
        assert stats == {"rounds": 0.0, "pushes": 0.0, "frontier": 0.0}
        assert ctx.sim_time() == t0

    def test_acceptance_incremental_under_quarter_of_full(self, ctx):
        """ISSUE gate: a 1%-edge window costs <25% of a full batch
        recompute on the sim clock, with matching ranks."""
        n, e = 2000, 20000
        src, dst = powerlaw_graph(n, e, seed=3)
        g = StreamingGraph(ctx.ps, n)
        g.apply(edge_adds(src, dst))
        pr = IncrementalPageRank(g, tol=1e-6)
        pr.bootstrap()
        rng = np.random.default_rng(4)
        nm = e // 100  # 1% churn
        ridx = rng.choice(len(src), size=nm // 2, replace=False)
        a_s = rng.integers(0, n, nm - nm // 2)
        a_d = (a_s + 1 + rng.integers(0, n - 1, nm - nm // 2)) % n
        t0 = ctx.sim_time()
        delta = g.apply(edge_adds(a_s, a_d)
                        + edge_dels(src[ridx], dst[ridx]))
        pr.update(delta)
        cost_inc = ctx.sim_time() - t0
        t1 = ctx.sim_time()
        ids_full, ranks_full = pr.full_recompute()
        cost_full = ctx.sim_time() - t1
        assert cost_full > 0
        assert cost_inc < 0.25 * cost_full, (
            f"incremental {cost_inc:.5f}s not < 25% of full "
            f"{cost_full:.5f}s")
        ids_inc, ranks_inc = pr.ranks()
        assert ids_inc.tolist() == ids_full.tolist()
        # Both paths stop at tol-scale residuals; the remaining gap is
        # bounded by the undelivered residual mass (observed ~2e-5).
        np.testing.assert_allclose(ranks_inc, ranks_full, atol=1e-4)


# ---------------------------------------------------------------------------
# incremental connected components
# ---------------------------------------------------------------------------


def _labels(cc):
    ids, labels = cc.assignments()
    return dict(zip(ids.tolist(), labels.tolist()))


class TestIncrementalComponents:
    def test_add_merges_components(self, ctx):
        g = StreamingGraph(ctx.ps, 10)
        g.apply(edge_adds(_ids(0, 4), _ids(1, 5)))
        cc = IncrementalComponents(g)
        cc.bootstrap()
        assert cc.num_components() == 2
        cc.update(g.apply(edge_adds(_ids(1), _ids(4))))
        assert cc.num_components() == 1
        assert set(_labels(cc).values()) == {0}

    def test_remove_splits_component(self, ctx):
        g = StreamingGraph(ctx.ps, 10)
        g.apply(edge_adds(_ids(0, 1, 2), _ids(1, 2, 3)))
        cc = IncrementalComponents(g)
        cc.bootstrap()
        cc.update(g.apply(edge_dels(_ids(1), _ids(2))))
        labels = _labels(cc)
        assert labels == {0: 0, 1: 0, 2: 2, 3: 2}

    def test_remove_keeping_component_intact(self, ctx):
        g = StreamingGraph(ctx.ps, 10)
        # Triangle: removing one edge must not split anything.
        g.apply(edge_adds(_ids(0, 1, 2), _ids(1, 2, 0)))
        cc = IncrementalComponents(g)
        cc.bootstrap()
        cc.update(g.apply(edge_dels(_ids(1), _ids(2))))
        assert set(_labels(cc).values()) == {0}

    def test_vertex_drop_splits_path(self, ctx):
        g = StreamingGraph(ctx.ps, 10)
        g.apply(edge_adds(_ids(0, 1, 2, 3), _ids(1, 2, 3, 4)))
        cc = IncrementalComponents(g)
        cc.bootstrap()
        cc.update(g.apply(vertex_dels(_ids(2))))
        labels = _labels(cc)
        assert labels == {0: 0, 1: 0, 3: 3, 4: 3}

    def test_split_relabels_side_losing_the_minimum(self, ctx):
        g = StreamingGraph(ctx.ps, 10)
        # 5-6 .. 0 .. 7-8 with 0 bridging; removing 0 orphans label 0.
        g.apply(edge_adds(_ids(5, 0, 0, 7), _ids(6, 5, 7, 8)))
        cc = IncrementalComponents(g)
        cc.bootstrap()
        assert set(_labels(cc).values()) == {0}
        cc.update(g.apply(vertex_dels(_ids(0))))
        labels = _labels(cc)
        assert labels == {5: 5, 6: 5, 7: 7, 8: 7}

    def test_random_churn_matches_full_recompute(self, ctx):
        rng = np.random.default_rng(9)
        src, dst = powerlaw_graph(80, 160, seed=2)
        g = StreamingGraph(ctx.ps, 80)
        g.apply(edge_adds(src, dst))
        cc = IncrementalComponents(g)
        cc.bootstrap()
        for _ in range(4):
            a_s = rng.integers(0, 80, 5)
            a_d = (a_s + 1 + rng.integers(0, 79, 5)) % 80
            cs, cd = _edge_set(g)
            ridx = rng.choice(len(cs), size=min(6, len(cs)),
                              replace=False)
            muts = edge_adds(a_s, a_d) + edge_dels(cs[ridx], cd[ridx])
            if rng.random() < 0.5:
                pres = g.present_vertices()
                muts += vertex_dels(pres[[rng.integers(0, len(pres))]])
            cc.update(g.apply(muts))
            ids_i, labs_i = cc.assignments()
            ids_f, labs_f = cc.full_recompute()
            assert ids_i.tolist() == ids_f.tolist()
            assert labs_i.tolist() == labs_f.tolist()


# ---------------------------------------------------------------------------
# online embedding refresh
# ---------------------------------------------------------------------------


class TestOnlineEmbeddingRefresh:
    def test_bootstrap_trains_toward_positive_pairs(self, ctx):
        src, dst = powerlaw_graph(40, 160, seed=6)
        g = StreamingGraph(ctx.ps, 40)
        g.apply(edge_adds(src, dst))
        emb = OnlineEmbeddingRefresh(g, dim=8, epochs=3)
        emb.bootstrap()
        dots = emb.emb.dot(src, dst)
        assert float(dots.mean()) > 0.0

    def test_update_trains_only_dirty_neighborhoods(self, ctx):
        g = StreamingGraph(ctx.ps, 20)
        g.apply(edge_adds(_ids(0, 1, 10, 11), _ids(1, 2, 11, 12)))
        emb = OnlineEmbeddingRefresh(g, dim=4)
        emb.bootstrap()
        before = emb.emb.pull_rows(np.arange(20, dtype=np.int64))
        delta = g.apply(edge_adds(_ids(0), _ids(2)))
        stats = emb.update(delta)
        after = emb.emb.pull_rows(np.arange(20, dtype=np.int64))
        assert stats["trained"] == 2.0  # dirty = {0, 2}
        # The far component's rows move only if sampled as negatives;
        # vertex 0's row must move (it trains on its positive pairs).
        assert not np.allclose(before[0], after[0])

    def test_empty_delta_trains_nothing(self, ctx):
        g = StreamingGraph(ctx.ps, 10)
        g.apply(edge_adds(_ids(0), _ids(1)))
        emb = OnlineEmbeddingRefresh(g, dim=4)
        emb.bootstrap()
        before = emb.emb.pull_rows(_ids(0, 1))
        stats = emb.update(g.apply([]))
        assert stats == {"pairs": 0.0, "trained": 0.0}
        np.testing.assert_array_equal(before, emb.emb.pull_rows(_ids(0, 1)))

    def test_deterministic_across_runs(self):
        def run():
            cluster = ClusterConfig(
                num_executors=2, executor_mem_bytes=128 * MB,
                num_servers=1, server_mem_bytes=128 * MB,
            )
            with PSGraphContext(cluster, app_name="emb-det") as c:
                src, dst = powerlaw_graph(30, 90, seed=1)
                g = StreamingGraph(c.ps, 30)
                g.apply(edge_adds(src, dst))
                emb = OnlineEmbeddingRefresh(g, dim=4)
                emb.bootstrap()
                emb.update(g.apply(edge_adds(_ids(3), _ids(9))))
                return emb.emb.pull_rows(g.present_vertices())

        np.testing.assert_array_equal(run(), run())


# ---------------------------------------------------------------------------
# the window engine
# ---------------------------------------------------------------------------


class TestStreamingEngine:
    def _build(self, ctx, *, with_consumer=False, measure_full=False):
        g = StreamingGraph(ctx.ps, 50, metrics=ctx.metrics)
        consumer = None
        topic = None
        if with_consumer:
            topic = KafkaTopic("muts", num_partitions=2)
            consumer = EdgeStreamConsumer(
                topic, ctx.hdfs, landing_dir="/stream/t",
                metrics=ctx.metrics)
        engine = StreamingEngine(g, consumer, measure_full=measure_full)
        engine.register("pagerank", IncrementalPageRank(g, tol=1e-8))
        engine.register("components", IncrementalComponents(g))
        return g, topic, engine

    def test_direct_feed_window(self, ctx):
        g, _, engine = self._build(ctx)
        engine.run_window(edge_adds(_ids(0, 1), _ids(1, 2)))
        engine.bootstrap()
        report = engine.run_window(edge_adds(_ids(2), _ids(3))
                                   + edge_dels(_ids(0), _ids(1)))
        assert report.edges_added == 1
        assert report.edges_removed == 1
        assert report.cost_incremental_s > 0
        assert report.cost_full_s is None
        assert set(report.algo_stats) == {"pagerank", "components"}
        assert ctx.metrics.get(STREAM_WINDOWS) == 2

    def test_consumer_fed_window(self, ctx):
        g, topic, engine = self._build(ctx, with_consumer=True)
        topic.produce(_ids(0, 1, 2), _ids(1, 2, 3))
        engine.run_window()
        engine.bootstrap()
        topic.produce_removals(_ids(0), _ids(1))
        report = engine.run_window()
        assert report.records == 1
        assert report.edges_removed == 1
        assert g.num_edges == 2

    def test_needs_mutations_or_consumer(self, ctx):
        _, _, engine = self._build(ctx)
        with pytest.raises(ValueError):
            engine.run_window()

    def test_measure_full_reports_ratio(self, ctx):
        g, _, engine = self._build(ctx, measure_full=True)
        engine.run_window(edge_adds(_ids(0, 1, 2, 3), _ids(1, 2, 3, 4)))
        engine.bootstrap()
        report = engine.run_window(edge_adds(_ids(4), _ids(5)))
        assert report.cost_full_s is not None and report.cost_full_s > 0
        assert report.cost_ratio is not None
        summary = engine.summary()
        assert summary["windows"] == 2.0
        assert summary["cost_ratio"] > 0


# ---------------------------------------------------------------------------
# PullCache indexed invalidation (bugfix regression)
# ---------------------------------------------------------------------------


class _NoIterDict(OrderedDict):
    """An entries dict that fails the test if anything scans it."""

    def __iter__(self):  # pragma: no cover - failure path
        raise AssertionError("invalidate scanned the cache")

    def items(self):  # pragma: no cover - failure path
        raise AssertionError("invalidate scanned the cache")

    def keys(self):  # pragma: no cover - failure path
        raise AssertionError("invalidate scanned the cache")


class TestPullCacheInvalidate:
    def _filled(self, n):
        cache = PullCache(staleness=5)
        keys = np.arange(n, dtype=np.int64)
        values = np.ones((n, 2))
        cache.store(keys, None, values, epoch=0)
        cache.store(keys, 1, values, epoch=0)
        return cache

    def test_invalidate_drops_all_columns_of_written_keys(self):
        cache = self._filled(10)
        assert len(cache) == 20
        cache.invalidate(np.asarray([3, 7], dtype=np.int64))
        assert len(cache) == 16
        mask, _ = cache.lookup(np.asarray([3]), None, epoch=0)
        assert not mask.any()
        mask, _ = cache.lookup(np.asarray([4]), None, epoch=0)
        assert mask.all()

    def test_invalidate_never_scans_entries(self):
        # Regression: invalidate used to iterate every cached entry to
        # find the written keys' columns.  The index makes it O(keys
        # written); swapping in a scan-hostile dict proves no fallback.
        cache = self._filled(100)
        cache._entries = _NoIterDict(cache._entries)
        cache.invalidate(np.asarray([5], dtype=np.int64))
        assert len(cache) == 198

    def test_invalidate_cost_independent_of_cache_size(self):
        big = self._filled(20000)
        small = self._filled(20)
        key = np.asarray([1], dtype=np.int64)
        val = np.ones((1, 2))

        def bench(cache):
            t0 = time.perf_counter()
            for _ in range(2000):
                cache.invalidate(key)
                cache.store(key, None, val, epoch=0)
            return time.perf_counter() - t0

        bench(small)  # warm both paths
        bench(big)
        t_small = bench(small)
        t_big = bench(big)
        # O(cache size) would make this ~1000x; allow generous jitter.
        assert t_big < 50 * max(t_small, 1e-9)

    def test_eviction_keeps_index_consistent(self):
        cache = PullCache(staleness=5, capacity=3)
        keys = np.arange(5, dtype=np.int64)
        cache.store(keys, None, np.ones((5, 2)), epoch=0)
        assert len(cache) == 3
        cache.invalidate(keys)  # evicted keys must not KeyError
        assert len(cache) == 0
