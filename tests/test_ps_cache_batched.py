"""PullCache behaviour under the batched pull/push path (pull_batch etc.).

Covers the satellite checklist: epoch expiry at the BSP barrier,
write-through invalidation of the writer's own rows, and hit/miss stats
when a batched pull partially overlaps the cached set.
"""

import numpy as np
import pytest

from repro.common.batch import RecordBatch
from repro.common.config import ClusterConfig
from repro.dataflow.context import SparkContext
from repro.ps.context import PSContext


@pytest.fixture
def ps():
    cluster = ClusterConfig(
        num_executors=2, executor_mem_bytes=1 << 40,
        num_servers=3, server_mem_bytes=1 << 40,
    )
    spark = SparkContext(cluster)
    psctx = PSContext(spark)
    yield psctx
    psctx.stop()
    spark.stop()


def make_cached_matrix(ps, staleness=0, cols=4, rows=64):
    m = ps.create_matrix("m", rows, cols)
    cache = ps.enable_pull_cache("m", staleness=staleness)
    full = np.arange(rows * cols, dtype=np.float64).reshape(rows, cols)
    m.set(np.arange(rows), full)
    cache.clear()  # set() warms nothing, but start from a clean slate
    cache.stats.hits = cache.stats.misses = 0
    return m, cache, full


class TestBatchedPullCaching:
    def test_pull_batch_returns_recordbatch(self, ps):
        m, _cache, full = make_cached_matrix(ps)
        keys = np.asarray([3, 11, 3, 40])
        batch = m.pull_batch(keys)
        assert isinstance(batch, RecordBatch)
        assert batch.is_columnar
        np.testing.assert_array_equal(batch.keys, keys)
        np.testing.assert_array_equal(batch.values, full[keys])

    def test_repeat_pull_within_epoch_hits(self, ps):
        m, cache, full = make_cached_matrix(ps, staleness=1)
        keys = np.arange(10)
        m.pull_batch(keys)
        assert cache.stats.misses == 10 and cache.stats.hits == 0
        batch = m.pull_batch(keys)
        assert cache.stats.hits == 10 and cache.stats.misses == 10
        np.testing.assert_array_equal(batch.values, full[keys])

    def test_barrier_expires_entries_under_bsp(self, ps):
        m, cache, _full = make_cached_matrix(ps, staleness=0)
        keys = np.arange(10)
        m.pull_batch(keys)
        m.pull_batch(keys)
        assert cache.stats.hits == 10  # same epoch: served from cache
        ps.barrier()  # BSP barrier ticks the epoch; staleness=0 expires all
        m.pull_batch(keys)
        assert cache.stats.misses == 20
        assert cache.stats.hits == 10

    def test_staleness_survives_one_barrier(self, ps):
        m, cache, _full = make_cached_matrix(ps, staleness=1)
        keys = np.arange(5)
        m.pull_batch(keys)
        ps.barrier()
        m.pull_batch(keys)  # one epoch old <= staleness: still served
        assert cache.stats.hits == 5
        ps.barrier()
        m.pull_batch(keys)  # two epochs old > staleness: expired
        assert cache.stats.misses == 10

    def test_push_batch_invalidates_writers_rows(self, ps):
        m, cache, full = make_cached_matrix(ps, staleness=5)
        keys = np.arange(10)
        m.pull_batch(keys)
        dirty = np.asarray([2, 7])
        m.push_batch(RecordBatch(dirty, np.ones((2, 4))))
        # The writer's own rows were dropped; the rest still serve.
        batch = m.pull_batch(keys)
        assert cache.stats.hits == 8
        assert cache.stats.misses == 12  # 10 cold + 2 invalidated
        np.testing.assert_array_equal(batch.values[dirty], full[dirty] + 1.0)

    def test_set_batch_invalidates_and_overwrites(self, ps):
        m, cache, full = make_cached_matrix(ps, staleness=5)
        keys = np.arange(6)
        m.pull_batch(keys)
        m.set_batch(RecordBatch(np.asarray([1, 4]), np.zeros((2, 4))))
        batch = m.pull_batch(keys)
        np.testing.assert_array_equal(batch.values[1], np.zeros(4))
        np.testing.assert_array_equal(batch.values[4], np.zeros(4))
        np.testing.assert_array_equal(batch.values[0], full[0])

    def test_partial_overlap_stats(self, ps):
        m, cache, full = make_cached_matrix(ps, staleness=1)
        m.pull_batch(np.arange(0, 10))
        cache.stats.hits = cache.stats.misses = 0
        batch = m.pull_batch(np.arange(5, 15))
        # keys 5..9 cached, 10..14 cold
        assert cache.stats.hits == 5
        assert cache.stats.misses == 5
        assert cache.stats.hit_rate == 0.5
        np.testing.assert_array_equal(batch.values, full[5:15])
        assert len(cache) == 15

    def test_cached_values_match_to_numpy(self, ps):
        m, _cache, _full = make_cached_matrix(ps, staleness=2)
        keys = np.asarray([0, 13, 27, 13])
        m.pull_batch(keys)
        batch = m.pull_batch(keys)  # served (at least partly) from cache
        np.testing.assert_array_equal(batch.values, m.to_numpy()[keys])

    def test_vector_pull_batch(self, ps):
        v = ps.create_vector("v", 32)
        ps.enable_pull_cache("v", staleness=1)
        v.set(np.arange(32), np.arange(32, dtype=np.float64))
        batch = v.pull_batch(np.asarray([4, 9]))
        assert batch.values.tolist() == [4.0, 9.0]
        batch = v.pull_batch(np.asarray([4, 9]))
        assert ps.pull_cache("v").stats.hits == 2
