"""Unit tests for repro.common: costs, clocks, memory, metrics, sizeof, rng."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.config import GB, ClusterConfig, psgraph_config_ds1
from repro.common.costs import CostModel
from repro.common.errors import ConfigError, SimulatedOOMError
from repro.common.memory import MemoryTracker
from repro.common.metrics import MetricsRegistry
from repro.common.rng import derive_seed, make_rng
from repro.common.simclock import SimClock, TaskCost, barrier
from repro.common.sizeof import sizeof, sizeof_records


class TestCostModel:
    def test_network_time_includes_latency(self):
        cm = CostModel(network_bandwidth_bps=1e9, rpc_latency_s=1e-3)
        assert cm.network_time(0) == pytest.approx(1e-3)
        assert cm.network_time(1e9) == pytest.approx(1.001)

    def test_congestion_multiplies_transfer_not_latency(self):
        cm = CostModel(network_bandwidth_bps=1e9, rpc_latency_s=0.0)
        assert cm.network_time(1e9, congestion=4) == pytest.approx(4.0)

    def test_congestion_below_one_clamped(self):
        cm = CostModel(network_bandwidth_bps=1e9, rpc_latency_s=0.0)
        assert cm.network_time(1e9, congestion=0.25) == pytest.approx(1.0)

    def test_disk_times(self):
        cm = CostModel(disk_read_bps=100.0, disk_write_bps=50.0)
        assert cm.disk_read_time(200) == pytest.approx(2.0)
        assert cm.disk_write_time(200) == pytest.approx(4.0)

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ConfigError):
            CostModel(network_bandwidth_bps=0)

    def test_invalid_overhead_rejected(self):
        with pytest.raises(ConfigError):
            CostModel(jvm_object_overhead=0.5)


class TestSimClock:
    def test_advance_accumulates(self):
        c = SimClock()
        c.advance(1.5)
        c.advance(2.5)
        assert c.now_s == pytest.approx(4.0)
        assert c.busy_s == pytest.approx(4.0)

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_advance_to_only_moves_forward(self):
        c = SimClock()
        c.advance(5)
        c.advance_to(3)
        assert c.now_s == 5
        c.advance_to(8)
        assert c.now_s == 8
        assert c.busy_s == 5  # idle time is not busy time

    def test_barrier_aligns_to_max(self):
        clocks = [SimClock(), SimClock(), SimClock()]
        clocks[0].advance(1)
        clocks[1].advance(7)
        t = barrier(clocks)
        assert t == 7
        assert all(c.now_s == 7 for c in clocks)

    def test_barrier_empty(self):
        assert barrier([]) == 0.0

    def test_task_cost_total_and_add(self):
        a = TaskCost(cpu_s=1, net_s=2, disk_s=3)
        b = TaskCost(cpu_s=0.5)
        a.add(b)
        assert a.total_s == pytest.approx(6.5)
        c = a.copy()
        c.cpu_s = 0
        assert a.cpu_s == pytest.approx(1.5)


class TestMemoryTracker:
    def test_allocate_and_release(self):
        m = MemoryTracker("c", capacity=100)
        m.allocate(60, tag="a")
        m.allocate(30, tag="b")
        assert m.used == 90
        assert m.free == 10
        m.release(30, tag="b")
        assert m.used == 60

    def test_oom_raised_with_context(self):
        m = MemoryTracker("executor-7", capacity=100)
        m.allocate(90)
        with pytest.raises(SimulatedOOMError) as exc:
            m.allocate(20, tag="join-table")
        assert "executor-7" in str(exc.value)
        assert "join-table" in str(exc.value)
        # Failed allocation does not change usage.
        assert m.used == 90

    def test_peak_tracks_high_water(self):
        m = MemoryTracker("c", capacity=None)
        m.allocate(100)
        m.release(100)
        m.allocate(40)
        assert m.peak == 100

    def test_release_tag_frees_everything(self):
        m = MemoryTracker("c", capacity=1000)
        m.allocate(100, tag="x")
        m.allocate(200, tag="x")
        assert m.release_tag("x") == 300
        assert m.used == 0

    def test_unlimited_capacity(self):
        m = MemoryTracker("c", capacity=None)
        m.allocate(10 ** 15)
        assert m.free is None

    @given(st.lists(st.integers(min_value=0, max_value=1000), max_size=30))
    def test_usage_never_negative(self, amounts):
        m = MemoryTracker("c", capacity=None)
        for a in amounts:
            m.allocate(a)
            m.release(a + 1)  # over-release is clamped
        assert m.used >= 0


class TestMetrics:
    def test_inc_and_get(self):
        r = MetricsRegistry()
        r.inc("x", 2)
        r.inc("x", 3)
        assert r.get("x") == 5
        assert r.get("missing") == 0

    def test_set_max(self):
        r = MetricsRegistry()
        r.set_max("m", 5)
        r.set_max("m", 3)
        assert r.get("m") == 5

    def test_snapshot_is_copy(self):
        r = MetricsRegistry()
        r.inc("x")
        snap = r.snapshot()
        r.inc("x")
        assert snap["x"] == 1

    def test_format_filters_by_prefix(self):
        r = MetricsRegistry()
        r.inc("a.one")
        r.inc("b.two")
        out = r.format("a.")
        assert "a.one" in out
        assert "b.two" not in out


class TestGaugeWaterMarks:
    def test_low_water_tracks_minimum(self):
        r = MetricsRegistry()
        r.set_gauge("g", 5.0)
        r.set_gauge("g", 2.0)
        r.set_gauge("g", 4.0)
        snap = r.gauge_snapshot()["g"]
        assert snap["value"] == 4.0
        assert snap["high"] == 5.0
        assert snap["low"] == 2.0
        assert snap["updates"] == 3

    def test_negative_initialization_sets_both_marks(self):
        # The first set() seeds high AND low from the observed value —
        # a gauge initialized to -3 must not report high == 0.
        r = MetricsRegistry()
        r.set_gauge("g", -3.0)
        snap = r.gauge_snapshot()["g"]
        assert snap["high"] == -3.0
        assert snap["low"] == -3.0
        r.set_gauge("g", -1.0)
        snap = r.gauge_snapshot()["g"]
        assert snap["high"] == -1.0
        assert snap["low"] == -3.0

    def test_single_update_marks_equal_value(self):
        r = MetricsRegistry()
        r.set_gauge("g", 7.5)
        snap = r.gauge_snapshot()["g"]
        assert snap["value"] == snap["high"] == snap["low"] == 7.5
        assert snap["updates"] == 1


class TestSizeof:
    def test_numpy_exact(self):
        a = np.zeros(10, dtype=np.float64)
        assert sizeof(a) == 80

    def test_scalars(self):
        assert sizeof(3) == 8
        assert sizeof(3.5) == 8
        assert sizeof(None) == 0

    def test_string_utf8(self):
        assert sizeof("abc") == 3

    def test_large_list_sampled_estimate_close(self):
        data = [(i, i + 1) for i in range(10000)]
        est = sizeof(data)
        # each tuple ~ 8 + 2*8 + 8 = 40ish; just check the right ballpark
        assert 200_000 < est < 600_000

    def test_sizeof_records_list_vs_array(self):
        arr = np.arange(100, dtype=np.int64)
        assert sizeof_records(arr) == 800
        assert sizeof_records(list(range(4))) > 0

    @given(st.lists(st.integers(), min_size=0, max_size=200))
    def test_sizeof_monotone_nonnegative(self, xs):
        assert sizeof(xs) >= 0


class TestClusterConfig:
    def test_parallelism_defaults(self):
        c = ClusterConfig(num_executors=4, executor_cores=2)
        assert c.parallelism == 8

    def test_scaled_preserves_counts(self):
        c = psgraph_config_ds1()
        s = c.scaled(1e-4)
        assert s.num_executors == c.num_executors
        assert s.num_servers == c.num_servers
        assert s.executor_mem_bytes == int(20 * GB * 1e-4)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ConfigError):
            ClusterConfig().scaled(0)

    def test_invalid_executors_rejected(self):
        with pytest.raises(ConfigError):
            ClusterConfig(num_executors=0)

    def test_ps_requires_server_memory(self):
        with pytest.raises(ConfigError):
            ClusterConfig(num_servers=2, server_mem_bytes=0)


class TestRng:
    def test_reproducible(self):
        a = make_rng(42).integers(0, 1000, 10)
        b = make_rng(42).integers(0, 1000, 10)
        assert (a == b).all()

    def test_derive_seed_varies_by_stream(self):
        s1 = derive_seed(7, "partition", 0)
        s2 = derive_seed(7, "partition", 1)
        assert s1 != s2

    def test_derive_seed_deterministic(self):
        assert derive_seed(7, "x", 3) == derive_seed(7, "x", 3)
