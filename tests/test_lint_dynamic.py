"""Dynamic determinism harness: double-run diffing and the built-in
workloads (the PageRank strict check here is the repo's own proof that
two seeded runs are indistinguishable)."""

import pytest

from repro.lint.dynamic import (
    WORKLOADS,
    DeterminismReport,
    _drifts,
    _flatten,
    _span_diffs,
    check_determinism,
    run_workload,
)


# ----------------------------------------------------------------------
# comparison helpers
# ----------------------------------------------------------------------

def test_flatten_nested_structures():
    out = {}
    _flatten("", {"a": {"b": 1, "c": [1.5, 2.5]}, "s": "skip"}, out)
    assert out == {"a.b": 1.0, "a.c[0]": 1.5, "a.c[1]": 2.5}


def test_drifts_respects_rtol():
    a = {"x": 1.0}
    b = {"x": 1.0 + 1e-12}
    assert _drifts(a, b, rtol=1e-9) == []
    assert len(_drifts(a, b, rtol=0.0)) == 1


def test_drifts_reports_missing_keys():
    diffs = _drifts({"x": 1.0}, {"y": 2.0}, rtol=0.0)
    assert any("missing in run 2" in d for d in diffs)
    assert any("missing in run 1" in d for d in diffs)


def test_span_diffs_reports_count_and_first_mismatch():
    a = [("s", 1), ("s", 2)]
    b = [("s", 1), ("s", 3), ("s", 4)]
    diffs = _span_diffs(a, b)
    assert diffs[0] == "span count: 2 != 3"
    assert "span[1]" in diffs[1]


def test_report_verdict():
    clean = DeterminismReport(
        workload="w", seed=1, strict=True, metric_diffs=[],
        span_diffs=[], stat_diffs=[], sim_times=(1.0, 1.0), races=[],
    )
    assert clean.ok and clean.deterministic
    assert "PASS" in clean.describe()
    dirty = DeterminismReport(
        workload="w", seed=1, strict=True, metric_diffs=["x: 1 != 2"],
        span_diffs=[], stat_diffs=[], sim_times=(1.0, 1.0), races=[],
    )
    assert not dirty.ok
    assert "FAIL" in dirty.describe()


def test_unknown_workload_raises():
    with pytest.raises(KeyError):
        run_workload("no-such-workload")


# ----------------------------------------------------------------------
# built-in workloads
# ----------------------------------------------------------------------

def test_builtin_workloads_registered():
    assert {"pagerank", "graphsage"} <= set(WORKLOADS)


def test_pagerank_snapshot_contents():
    snap = run_workload("pagerank", seed=7)
    assert snap.sim_time_s > 0
    assert snap.stats["iterations"] >= 1
    assert snap.spans, "workload must record obs spans"
    assert snap.metrics, "workload must record metrics"


def test_pagerank_strict_determinism():
    """Two seeded PageRank runs must be bit-for-bit identical."""
    report = check_determinism("pagerank", seed=123, strict=True)
    assert report.ok, report.describe()
    assert report.sim_times[0] == report.sim_times[1]
    assert report.metric_diffs == []
    assert report.span_diffs == []


def test_different_seeds_actually_differ():
    one = run_workload("pagerank", seed=1)
    two = run_workload("pagerank", seed=2)
    assert one.spans != two.spans or one.metrics != two.metrics


def test_report_round_trips_to_dict():
    report = check_determinism("pagerank", seed=5, strict=True)
    d = report.to_dict()
    assert d["ok"] is True
    assert d["workload"] == "pagerank"
    assert isinstance(d["races"], list)
