"""Unit + property tests for the RDD engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SimulatedOOMError
from repro.common.metrics import SHUFFLE_BYTES_WRITTEN, STAGES_RUN
from repro.dataflow.partitioner import HashPartitioner
from tests.conftest import make_context


class TestBasics:
    def test_parallelize_collect_roundtrip(self, sc):
        data = list(range(100))
        assert sorted(sc.parallelize(data).collect()) == data

    def test_count(self, sc):
        assert sc.parallelize(range(37)).count() == 37

    def test_map_filter(self, sc):
        got = sc.parallelize(range(10)).map(lambda x: x * 2).filter(
            lambda x: x > 10).collect()
        assert sorted(got) == [12, 14, 16, 18]

    def test_flat_map(self, sc):
        got = sc.parallelize([1, 2, 3]).flat_map(lambda x: [x] * x).collect()
        assert sorted(got) == [1, 2, 2, 3, 3, 3]

    def test_map_partitions_with_index_covers_all(self, sc):
        got = sc.parallelize(range(8), 4).map_partitions_with_index(
            lambda i, it: [(i, sum(1 for _ in it))]
        ).collect()
        assert sum(n for _i, n in got) == 8
        assert {i for i, _n in got} == {0, 1, 2, 3}

    def test_glom_partition_count(self, sc):
        parts = sc.parallelize(range(10), 3).glom().collect()
        assert len(parts) == 3
        assert sorted(x for p in parts for x in p) == list(range(10))

    def test_union(self, sc):
        a = sc.parallelize([1, 2])
        b = sc.parallelize([3])
        assert sorted(a.union(b).collect()) == [1, 2, 3]

    def test_take_and_first(self, sc):
        rdd = sc.parallelize(range(100), 5)
        assert len(rdd.take(7)) == 7
        assert rdd.first() in range(100)

    def test_first_empty_raises(self, sc):
        with pytest.raises(ValueError):
            sc.empty_rdd().first()

    def test_reduce_and_sum(self, sc):
        rdd = sc.parallelize(range(1, 11))
        assert rdd.reduce(lambda a, b: a + b) == 55
        assert rdd.sum() == 55

    def test_reduce_empty_raises(self, sc):
        with pytest.raises(ValueError):
            sc.empty_rdd().reduce(lambda a, b: a + b)

    def test_fold_aggregate_max_min_mean(self, sc):
        rdd = sc.parallelize([3, 1, 4, 1, 5])
        assert rdd.fold(0, lambda a, b: a + b) == 14
        assert rdd.max() == 5
        assert rdd.min() == 1
        assert rdd.mean() == pytest.approx(2.8)
        total, n = rdd.aggregate(
            (0, 0), lambda acc, x: (acc[0] + x, acc[1] + 1),
            lambda a, b: (a[0] + b[0], a[1] + b[1]))
        assert (total, n) == (14, 5)

    def test_distinct(self, sc):
        assert sorted(sc.parallelize([1, 1, 2, 2, 3]).distinct().collect()) \
            == [1, 2, 3]

    def test_zip_with_index_is_dense(self, sc):
        pairs = sc.parallelize(list("abcdefgh"), 3).zip_with_index().collect()
        assert sorted(i for _x, i in pairs) == list(range(8))

    def test_sample_fraction_zero_one(self, sc):
        rdd = sc.parallelize(range(100))
        assert rdd.sample(0.0).count() == 0
        assert rdd.sample(1.0).count() == 100

    def test_coalesce(self, sc):
        rdd = sc.parallelize(range(20), 8).coalesce(3)
        assert rdd.num_partitions == 3
        assert sorted(rdd.collect()) == list(range(20))

    def test_repartition(self, sc):
        rdd = sc.parallelize(range(20), 2).repartition(5)
        assert rdd.num_partitions == 5
        assert sorted(rdd.collect()) == list(range(20))

    def test_is_empty(self, sc):
        assert sc.empty_rdd().is_empty()
        assert not sc.parallelize([1]).is_empty()

    def test_foreach_partition_results(self, sc):
        out = sc.parallelize(range(10), 4).foreach_partition(
            lambda it: sum(it))
        assert sum(out) == 45


class TestKeyedOps:
    def test_group_by_key(self, sc):
        pairs = [(i % 3, i) for i in range(9)]
        got = dict(sc.parallelize(pairs).group_by_key().collect())
        assert sorted(got[0]) == [0, 3, 6]
        assert sorted(got[1]) == [1, 4, 7]

    def test_reduce_by_key(self, sc):
        pairs = [("a", 1), ("b", 2), ("a", 3)]
        got = dict(sc.parallelize(pairs).reduce_by_key(lambda a, b: a + b)
                   .collect())
        assert got == {"a": 4, "b": 2}

    def test_combine_by_key_mean(self, sc):
        pairs = [("a", 1.0), ("a", 3.0), ("b", 10.0)]
        combined = sc.parallelize(pairs).combine_by_key(
            lambda v: (v, 1),
            lambda acc, v: (acc[0] + v, acc[1] + 1),
            lambda a, b: (a[0] + b[0], a[1] + b[1]),
        ).map_values(lambda sc_: sc_[0] / sc_[1]).collect()
        assert dict(combined) == {"a": 2.0, "b": 10.0}

    def test_aggregate_by_key(self, sc):
        pairs = [("a", 1), ("a", 2), ("b", 5)]
        got = dict(sc.parallelize(pairs).aggregate_by_key(
            0, lambda acc, v: acc + v, lambda a, b: a + b).collect())
        assert got == {"a": 3, "b": 5}

    def test_fold_by_key(self, sc):
        got = dict(sc.parallelize([("a", 1), ("a", 2)]).fold_by_key(
            10, lambda a, b: a + b).collect())
        assert got == {"a": 23}

    def test_join_inner(self, sc):
        left = sc.parallelize([(1, "a"), (2, "b"), (3, "c")])
        right = sc.parallelize([(1, "x"), (3, "y"), (4, "z")])
        got = sorted(left.join(right).collect())
        assert got == [(1, ("a", "x")), (3, ("c", "y"))]

    def test_left_outer_join(self, sc):
        left = sc.parallelize([(1, "a"), (2, "b")])
        right = sc.parallelize([(1, "x")])
        got = dict(left.left_outer_join(right).collect())
        assert got == {1: ("a", "x"), 2: ("b", None)}

    def test_full_outer_join(self, sc):
        left = sc.parallelize([(1, "a")])
        right = sc.parallelize([(2, "x")])
        got = dict(left.full_outer_join(right).collect())
        assert got == {1: ("a", None), 2: (None, "x")}

    def test_cogroup_shapes(self, sc):
        a = sc.parallelize([(1, "a"), (1, "b")])
        b = sc.parallelize([(1, "x"), (2, "y")])
        got = dict(a.cogroup(b).collect())
        assert sorted(got[1][0]) == ["a", "b"]
        assert got[1][1] == ["x"]
        assert got[2] == ([], ["y"])

    def test_subtract_by_key(self, sc):
        a = sc.parallelize([(1, "a"), (2, "b")])
        b = sc.parallelize([(2, "x")])
        assert a.subtract_by_key(b).collect() == [(1, "a")]

    def test_count_by_key_and_value(self, sc):
        rdd = sc.parallelize([("a", 1), ("a", 2), ("b", 1)])
        assert rdd.count_by_key() == {"a": 2, "b": 1}
        assert sc.parallelize([1, 1, 2]).count_by_value() == {1: 2, 2: 1}

    def test_lookup(self, sc):
        rdd = sc.parallelize([("a", 1), ("b", 2), ("a", 3)])
        assert sorted(rdd.lookup("a")) == [1, 3]

    def test_partition_by_places_keys(self, sc):
        p = HashPartitioner(4)
        rdd = sc.parallelize([(i, i) for i in range(16)]).partition_by(p)
        parts = rdd.glom().collect()
        for pid, part in enumerate(parts):
            for k, _v in part:
                assert p.partition(k) == pid

    def test_partition_by_same_partitioner_noop(self, sc):
        p = HashPartitioner(4)
        rdd = sc.parallelize([(i, i) for i in range(8)]).partition_by(p)
        assert rdd.partition_by(p) is rdd

    def test_copartitioned_join_skips_second_shuffle(self, sc):
        p = HashPartitioner(4)
        a = sc.parallelize([(i, "a") for i in range(8)]).partition_by(p)
        b = sc.parallelize([(i, "b") for i in range(8)]).partition_by(p)
        a.collect()
        b.collect()
        before = sc.metrics.get(SHUFFLE_BYTES_WRITTEN)
        got = a.join(b).collect()
        assert len(got) == 8
        # Joining two co-partitioned RDDs must not shuffle them again.
        assert sc.metrics.get(SHUFFLE_BYTES_WRITTEN) == before


class TestSorting:
    def test_sort_by_ascending(self, sc):
        data = [5, 3, 8, 1, 9, 2]
        assert sc.parallelize(data, 3).sort_by(lambda x: x).collect() == \
            sorted(data)

    def test_sort_by_descending(self, sc):
        data = [5, 3, 8, 1]
        got = sc.parallelize(data, 2).sort_by(lambda x: x, ascending=False) \
            .collect()
        assert got == sorted(data, reverse=True)

    def test_sort_by_key(self, sc):
        pairs = [(3, "c"), (1, "a"), (2, "b")]
        got = sc.parallelize(pairs, 2).sort_by_key().collect()
        assert got == [(1, "a"), (2, "b"), (3, "c")]


class TestCaching:
    def test_cache_skips_recompute(self, sc):
        calls = []

        def spy(x):
            calls.append(x)
            return x

        rdd = sc.parallelize(range(10), 2).map(spy).cache()
        rdd.collect()
        n_first = len(calls)
        rdd.collect()
        assert len(calls) == n_first  # second collect served from cache

    def test_unpersist_frees_memory(self, sc):
        rdd = sc.parallelize(range(1000), 4).cache()
        rdd.collect()
        used = sum(ex.container.memory.used for ex in sc.executors)
        assert used > 0
        rdd.unpersist()
        used_after = sum(ex.container.memory.used for ex in sc.executors)
        assert used_after == 0

    def test_cache_oom_when_executor_too_small(self):
        ctx = make_context(num_executors=2, executor_mem=512)
        try:
            rdd = ctx.parallelize(range(10000), 2).cache()
            with pytest.raises(SimulatedOOMError):
                rdd.collect()
        finally:
            ctx.stop()


class TestTextFiles:
    def test_save_and_read_roundtrip(self, sc):
        rdd = sc.parallelize([f"line-{i}" for i in range(20)], 4)
        rdd.save_as_text_file("/out/data")
        assert len(sc.hdfs.listdir("/out/data")) == 4
        back = sc.text_file("/out/data").collect()
        assert sorted(back) == sorted(f"line-{i}" for i in range(20))

    def test_text_file_single_file_split(self, sc):
        sc.hdfs.write_text("/in/one.txt", [str(i) for i in range(10)])
        rdd = sc.text_file("/in/one.txt", min_partitions=3)
        assert sorted(int(x) for x in rdd.collect()) == list(range(10))


class TestSchedulerAccounting:
    def test_stage_metric_counts(self, sc):
        sc.parallelize(range(10)).map(lambda x: (x % 2, x)) \
            .reduce_by_key(lambda a, b: a + b).collect()
        assert sc.metrics.get(STAGES_RUN) >= 2  # map stage + result stage

    def test_shuffle_reuse_across_actions(self, sc):
        rdd = sc.parallelize([(i % 3, i) for i in range(30)]).group_by_key()
        rdd.count()
        written = sc.metrics.get(SHUFFLE_BYTES_WRITTEN)
        rdd.count()  # same RDD: shuffle output reused
        assert sc.metrics.get(SHUFFLE_BYTES_WRITTEN) == written

    def test_sim_time_advances_with_work(self, sc):
        t0 = sc.sim_time()
        sc.parallelize(range(2000), 4).map(lambda x: x + 1).count()
        assert sc.sim_time() > t0

    def test_reduce_by_key_moves_fewer_bytes_than_group_by_key(self):
        ctx1 = make_context()
        ctx2 = make_context()
        try:
            pairs = [(i % 5, i) for i in range(2000)]
            ctx1.parallelize(pairs, 4).group_by_key().count()
            ctx2.parallelize(pairs, 4).reduce_by_key(lambda a, b: a + b) \
                .count()
            gbk = ctx1.metrics.get(SHUFFLE_BYTES_WRITTEN)
            rbk = ctx2.metrics.get(SHUFFLE_BYTES_WRITTEN)
            assert rbk < gbk / 10
        finally:
            ctx1.stop()
            ctx2.stop()


class TestFailureRecovery:
    def test_lost_executor_recomputed_from_lineage(self, sc):
        rdd = sc.parallelize([(i % 4, i) for i in range(40)], 4) \
            .group_by_key().map_values(sorted)
        first = dict(rdd.collect())
        sc.kill_executor(1)
        second = dict(rdd.collect())
        assert first == second
        assert sc.executors[1].container.restarts == 1

    def test_cache_lost_on_kill_recomputed(self, sc):
        rdd = sc.parallelize(range(40), 4).map(lambda x: x * 2).cache()
        assert sorted(rdd.collect()) == [x * 2 for x in range(40)]
        sc.kill_executor(0)
        assert sorted(rdd.collect()) == [x * 2 for x in range(40)]

    def test_restart_counts_metric(self, sc):
        rdd = sc.parallelize(range(8), 4)
        rdd.collect()
        sc.kill_executor(2)
        rdd.collect()
        assert sc.executors[2].container.restarts == 1


class TestProperties:
    @settings(deadline=None, max_examples=25)
    @given(st.lists(st.integers(min_value=-100, max_value=100), max_size=60),
           st.integers(min_value=1, max_value=6))
    def test_collect_preserves_multiset(self, data, nparts):
        ctx = make_context(num_executors=2)
        try:
            got = ctx.parallelize(data, nparts).collect()
            assert sorted(got) == sorted(data)
        finally:
            ctx.stop()

    @settings(deadline=None, max_examples=25)
    @given(st.lists(st.tuples(st.integers(0, 10), st.integers(-5, 5)),
                    max_size=60))
    def test_reduce_by_key_matches_python(self, pairs):
        ctx = make_context(num_executors=2)
        try:
            expected = {}
            for k, v in pairs:
                expected[k] = expected.get(k, 0) + v
            got = dict(ctx.parallelize(pairs, 3)
                       .reduce_by_key(lambda a, b: a + b).collect())
            assert got == expected
        finally:
            ctx.stop()

    @settings(deadline=None, max_examples=20)
    @given(st.lists(st.integers(0, 50), min_size=1, max_size=60))
    def test_sort_by_total_order(self, data):
        ctx = make_context(num_executors=2)
        try:
            got = ctx.parallelize(data, 3).sort_by(lambda x: x).collect()
            assert got == sorted(data)
        finally:
            ctx.stop()


class TestBroadcast:
    def test_value_accessible_and_memory_charged(self, sc):
        data = {"weights": list(range(1000))}
        b = sc.broadcast(data)
        assert b.value["weights"][5] == 5
        used = sum(ex.container.memory.used for ex in sc.executors)
        assert used >= b.nbytes * len(sc.executors)

    def test_unpersist_releases(self, sc):
        b = sc.broadcast(list(range(1000)))
        b.unpersist()
        assert not b.is_live
        assert sum(ex.container.memory.used for ex in sc.executors) == 0
        b.unpersist()  # idempotent

    def test_broadcast_advances_clocks(self, sc):
        t0 = sc.sim_time()
        sc.broadcast(list(range(100000)))
        assert sc.sim_time() > t0

    def test_usable_inside_tasks(self, sc):
        lookup = sc.broadcast({i: i * i for i in range(50)})
        got = sc.parallelize(range(50)).map(
            lambda x: lookup.value[x]).collect()
        assert sorted(got) == sorted(i * i for i in range(50))


class TestRddCheckpoint:
    def test_checkpoint_roundtrip(self, sc):
        rdd = sc.parallelize(range(20), 4).map(lambda x: x * 3)
        rdd.checkpoint()
        assert rdd.is_checkpointed
        assert sorted(rdd.collect()) == [x * 3 for x in range(20)]

    def test_checkpoint_truncates_lineage(self, sc):
        calls = []

        def spy(x):
            calls.append(x)
            return x

        rdd = sc.parallelize(range(10), 2).map(spy)
        rdd.checkpoint()
        n = len(calls)
        rdd.collect()  # served from HDFS, no recompute
        assert len(calls) == n

    def test_checkpoint_survives_executor_death(self, sc):
        rdd = sc.parallelize(range(40), 4).map(lambda x: x + 1)
        rdd.checkpoint()
        for i in range(4):
            sc.kill_executor(i)
        assert sorted(rdd.collect()) == [x + 1 for x in range(40)]

    def test_checkpoint_files_on_hdfs(self, sc):
        rdd = sc.parallelize(range(8), 2)
        rdd.checkpoint("/ck/mine")
        assert len(sc.hdfs.listdir("/ck/mine")) == 2

    def test_downstream_of_checkpoint_computes(self, sc):
        rdd = sc.parallelize(range(10), 2).map(lambda x: x * 2)
        rdd.checkpoint()
        out = rdd.filter(lambda x: x >= 10).count()
        assert out == 5


class TestSetOpsAndStats:
    def test_intersection(self, sc):
        a = sc.parallelize([1, 2, 3, 3, 4])
        b = sc.parallelize([3, 4, 5])
        assert sorted(a.intersection(b).collect()) == [3, 4]

    def test_subtract(self, sc):
        a = sc.parallelize([1, 2, 3, 3])
        b = sc.parallelize([3])
        assert sorted(a.subtract(b).collect()) == [1, 2]

    def test_cartesian(self, sc):
        a = sc.parallelize([1, 2], 2)
        b = sc.parallelize(["x", "y"], 2)
        got = sorted(a.cartesian(b).collect())
        assert got == [(1, "x"), (1, "y"), (2, "x"), (2, "y")]

    def test_zip_partitions(self, sc):
        a = sc.parallelize(range(8), 4)
        b = sc.parallelize(range(100, 108), 4)
        got = sorted(a.zip_partitions(
            b, lambda x, y: (i + j for i, j in zip(x, y))).collect())
        assert got == sorted(i + j for i, j in
                             zip(range(8), range(100, 108)))

    def test_zip_partitions_width_mismatch(self, sc):
        from repro.common.errors import ConfigError

        a = sc.parallelize(range(8), 4)
        b = sc.parallelize(range(8), 2)
        with pytest.raises(ConfigError):
            a.zip_partitions(b, lambda x, y: [])

    def test_top_and_take_ordered(self, sc):
        rdd = sc.parallelize([5, 1, 9, 3, 7], 3)
        assert rdd.top(2) == [9, 7]
        assert rdd.take_ordered(2) == [1, 3]
        assert rdd.top(2, key=lambda x: -x) == [1, 3]

    def test_stats_matches_numpy(self, sc):
        import numpy as np

        data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        s = sc.parallelize(data, 3).stats()
        assert s.count == 8
        assert s.mean == pytest.approx(np.mean(data))
        assert s.stdev == pytest.approx(np.std(data))
        assert s.min == 1.0
        assert s.max == 9.0

    def test_stats_empty_partitions(self, sc):
        s = sc.parallelize([2.0], 4).stats()
        assert s.count == 1
        assert s.mean == 2.0
        assert s.variance == 0.0
