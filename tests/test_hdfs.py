"""Unit tests for the simulated HDFS."""

import numpy as np
import pytest

from repro.common.costs import CostModel
from repro.common.errors import (
    FileAlreadyExistsError,
    FileNotFoundOnHdfsError,
    HdfsError,
)
from repro.common.metrics import HDFS_BYTES_READ, HDFS_BYTES_WRITTEN, MetricsRegistry
from repro.common.simclock import TaskCost
from repro.hdfs.filesystem import Hdfs


@pytest.fixture
def fs():
    return Hdfs(metrics=MetricsRegistry())


class TestReadWrite:
    def test_text_roundtrip(self, fs):
        fs.write_text("/data/a.txt", ["one", "two"])
        assert fs.read_lines("/data/a.txt") == ["one", "two"]

    def test_bytes_roundtrip(self, fs):
        fs.write_bytes("/b", b"\x00\x01")
        assert fs.read_bytes("/b") == b"\x00\x01"

    def test_pickle_snapshot_is_deep_copy(self, fs):
        obj = {"v": np.arange(4)}
        fs.write_pickle("/ckpt/p0", obj)
        obj["v"][0] = 99
        loaded = fs.read_pickle("/ckpt/p0")
        assert loaded["v"][0] == 0

    def test_overwrite_required_for_existing(self, fs):
        fs.write_text("/x", "a")
        with pytest.raises(FileAlreadyExistsError):
            fs.write_text("/x", "b")
        fs.write_text("/x", "b", overwrite=True)
        assert fs.read_text("/x") == "b"

    def test_missing_file_raises(self, fs):
        with pytest.raises(FileNotFoundOnHdfsError):
            fs.read_text("/nope")

    def test_empty_path_rejected(self, fs):
        with pytest.raises(HdfsError):
            fs.write_text("", "x")

    def test_path_normalization(self, fs):
        fs.write_text("a/b/", "x")
        assert fs.exists("/a/b")
        assert fs.read_text("/a/b/") == "x"


class TestNamespace:
    def test_listdir_sorted(self, fs):
        fs.write_text("/d/2", "b")
        fs.write_text("/d/1", "a")
        fs.write_text("/other", "c")
        assert fs.listdir("/d") == ["/d/1", "/d/2"]

    def test_glob(self, fs):
        fs.write_text("/out/part-00000", "x")
        fs.write_text("/out/part-00001", "y")
        fs.write_text("/out/_SUCCESS", "")
        assert fs.glob("/out/part-*") == ["/out/part-00000", "/out/part-00001"]

    def test_delete_single_and_recursive(self, fs):
        fs.write_text("/d/a", "1")
        fs.write_text("/d/b", "2")
        assert fs.delete("/d/a") == 1
        assert fs.delete("/d", recursive=True) == 1
        assert fs.listdir("/d") == []

    def test_delete_missing_raises(self, fs):
        with pytest.raises(FileNotFoundOnHdfsError):
            fs.delete("/ghost")

    def test_file_size_and_total(self, fs):
        fs.write_bytes("/a", b"12345")
        assert fs.file_size("/a") == 5
        assert fs.total_bytes() == 5


class TestMetering:
    def test_write_charges_replicated_disk_time(self):
        cm = CostModel(disk_write_bps=100.0, disk_read_bps=100.0)
        fs = Hdfs(cost_model=cm, replication=3)
        cost = TaskCost()
        fs.write_bytes("/a", b"x" * 100, cost=cost)
        assert cost.disk_s == pytest.approx(3.0)

    def test_read_charges_disk_time_once(self):
        cm = CostModel(disk_write_bps=100.0, disk_read_bps=100.0)
        fs = Hdfs(cost_model=cm, replication=3)
        fs.write_bytes("/a", b"x" * 100)
        cost = TaskCost()
        fs.read_bytes("/a", cost=cost)
        assert cost.disk_s == pytest.approx(1.0)

    def test_metrics_counters(self, fs):
        fs.write_bytes("/a", b"x" * 10)
        fs.read_bytes("/a")
        assert fs.metrics.get(HDFS_BYTES_WRITTEN) == 30  # 3x replication
        assert fs.metrics.get(HDFS_BYTES_READ) == 10

    def test_block_count(self, fs):
        f = fs.write_bytes("/big", b"x" * (fs.block_size + 1))
        assert f.num_blocks == 2
