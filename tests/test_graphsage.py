"""Tests for PSGraph GraphSage (model + distributed training)."""

import numpy as np
import pytest

from repro.common.config import ClusterConfig
from repro.core.algorithms.graphsage import GraphSage, SageNet, make_sage
from repro.core.context import PSGraphContext
from repro.core.ops import edges_from_arrays
from repro.datasets.generators import community_graph, vertex_features
from repro.torchlite.script import ScriptModule
from repro.torchlite.tensor import Tensor


def make_psg(num_executors=3, num_servers=2):
    cluster = ClusterConfig(
        num_executors=num_executors, executor_mem_bytes=1 << 40,
        num_servers=num_servers, server_mem_bytes=1 << 40,
    )
    return PSGraphContext(cluster)


@pytest.fixture
def psg():
    ctx = make_psg()
    yield ctx
    ctx.stop()


def small_task(n=150, classes=3, dim=8, seed=31):
    src, dst, comm = community_graph(
        n, classes, avg_degree=10, mixing=0.05, seed=seed
    )
    feats, labels = vertex_features(comm, dim, classes, noise=0.8,
                                    seed=seed + 1)
    return src, dst, feats, labels


class TestSageNet:
    def test_forward_shapes(self):
        model = SageNet(in_dim=4, hidden=8, num_classes=3, seed=0)
        x_b = Tensor(np.random.default_rng(0).standard_normal((5, 4)))
        x_n1 = Tensor(np.random.default_rng(1).standard_normal((15, 4)))
        seg1 = np.repeat(np.arange(5), 3)
        x_n2 = Tensor(np.random.default_rng(2).standard_normal((30, 4)))
        seg2 = np.repeat(np.arange(15), 2)
        out = model(x_b, x_n1, seg1, x_n2, seg2)
        assert out.shape == (5, 3)

    def test_gradients_flow_to_both_layers(self):
        model = SageNet(in_dim=3, hidden=4, num_classes=2, seed=1)
        x_b = Tensor(np.ones((2, 3)))
        x_n1 = Tensor(np.ones((4, 3)))
        x_n2 = Tensor(np.ones((8, 3)))
        out = model(x_b, x_n1, np.array([0, 0, 1, 1]),
                    x_n2, np.repeat(np.arange(4), 2))
        out.sum().backward()
        for _name, p in model.named_parameters():
            assert p.grad is not None

    def test_scriptmodule_roundtrip(self):
        blob = ScriptModule.trace(
            make_sage, in_dim=4, hidden=8, num_classes=3, seed=7
        )
        m1 = blob.instantiate()
        m2 = ScriptModule.from_bytes(blob.to_bytes()).instantiate()
        x_b = Tensor(np.ones((2, 4)))
        x_n1 = Tensor(np.ones((4, 4)))
        x_n2 = Tensor(np.ones((8, 4)))
        seg1 = np.array([0, 0, 1, 1])
        seg2 = np.repeat(np.arange(4), 2)
        np.testing.assert_allclose(
            m1(x_b, x_n1, seg1, x_n2, seg2).data,
            m2(x_b, x_n1, seg1, x_n2, seg2).data,
        )


class TestGraphSageTraining:
    def test_accuracy_beats_chance_and_loss_drops(self, psg):
        src, dst, feats, labels = small_task()
        edges = edges_from_arrays(psg.spark, src, dst)
        algo = GraphSage(
            feats, labels, hidden=16, epochs=4, batch_size=64, lr=0.05,
        )
        result = algo.transform(psg, edges)
        losses = result.stats["epoch_losses"]
        assert losses[-1] < losses[0]
        assert result.stats["accuracy"] > 0.6  # chance is ~1/3

    def test_preprocess_time_recorded(self, psg):
        src, dst, feats, labels = small_task(n=80)
        edges = edges_from_arrays(psg.spark, src, dst)
        algo = GraphSage(feats, labels, hidden=8, epochs=1, batch_size=32)
        result = algo.transform(psg, edges)
        assert result.stats["preprocess_sim_time"] > 0
        assert len(result.stats["epoch_sim_times"]) == 1

    def test_output_row(self, psg):
        src, dst, feats, labels = small_task(n=60)
        edges = edges_from_arrays(psg.spark, src, dst)
        algo = GraphSage(feats, labels, hidden=8, epochs=1, batch_size=32,
                         train_fraction=0.5)
        result = algo.transform(psg, edges)
        row = result.output.collect()[0]
        assert row["train_nodes"] + row["test_nodes"] <= 60
        assert 0.0 <= row["accuracy"] <= 1.0


class TestLstmAggregator:
    def test_lstm_aggregator_trains(self, psg):
        from repro.datasets.generators import community_graph, vertex_features
        from repro.core.ops import edges_from_arrays

        src, dst, comm = community_graph(
            120, 3, avg_degree=10, mixing=0.05, seed=65
        )
        feats, labels = vertex_features(comm, 8, 3, noise=0.8, seed=66)
        edges = edges_from_arrays(psg.spark, src, dst)
        result = GraphSage(
            feats, labels, hidden=12, epochs=3, batch_size=64, lr=0.03,
            fanouts=(5, 3), aggregator="lstm",
        ).transform(psg, edges)
        assert result.stats["accuracy"] > 0.55

    def test_lstm_requires_uniform_sequences(self):
        from repro.core.algorithms.graphsage import SageNet
        from repro.torchlite import Tensor

        model = SageNet(4, 4, 2, aggregator="lstm")
        with pytest.raises(ValueError):
            # 5 neighbor rows over 2 segments: not uniform.
            model._agg(Tensor(np.ones((5, 4))),
                       np.array([0, 0, 0, 1, 1]), 2, level=1)
