"""Cost-transparency equivalence: batched vs boxed, serial vs pooled.

The columnar pipeline is a host-speed representation change only, and the
process pool (``repro.dataflow.pool``) is a wall-clock-only change on top.
These tests pin both contracts: for a shuffle, a reduceByKey, and one
Pregel-style superstep, the batched and boxed runs — each under the serial
loop and under a 4-worker pool — must produce

* identical results,
* identical ``dataflow.shuffle.*`` metrics (logical bytes + record counts),
* identical obs span sequences (names, tags, and bit-exact sim times),
* identical total simulated time.

Pool bookkeeping (the ``dataflow.pool.*`` namespace) is host-side by
design and excluded from serial-vs-parallel comparisons; everything else
must match bit for bit.

Values are integer-valued floats throughout so every summation order is
exact and result comparison can demand equality, not tolerance.
"""

import numpy as np
import pytest

from repro.common.config import ClusterConfig
from repro.common.metrics import (
    SHUFFLE_BYTES_READ,
    SHUFFLE_BYTES_WRITTEN,
    SHUFFLE_RECORDS,
    MetricsRegistry,
)
from repro.dataflow.context import SparkContext
from repro.dataflow.partitioner import HashPartitioner
from repro.lint.dynamic import _span_key
from repro.obs.tracer import Tracer

N_RECORDS = 600
N_PARTITIONS = 4

#: Host-side pool bookkeeping — outside the simulated-cost contract.
POOL_PREFIX = "dataflow.pool."

#: Both execution modes every equivalence contract must hold under.
PARALLEL_MODES = pytest.mark.parametrize(
    "parallel", [0, 4], ids=["serial", "pool4"])


def drop_pool(metrics):
    return {k: v for k, v in metrics.items()
            if not k.startswith(POOL_PREFIX)}


def make_data(seed=7):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 80, size=N_RECORDS).astype(np.int64)
    values = rng.integers(-100, 100, size=N_RECORDS).astype(np.float64)
    return keys, values


def run(pipeline, batched, parallel=0):
    """Run one pipeline on a fresh, fully instrumented context."""
    tracer = Tracer()
    metrics = MetricsRegistry()
    cluster = ClusterConfig(num_executors=4, executor_mem_bytes=1 << 40)
    ctx = SparkContext(cluster, tracer=tracer, metrics=metrics,
                       parallel=parallel)
    try:
        keys, values = make_data()
        if batched:
            rdd = ctx.parallelize_batches(keys, values, N_PARTITIONS)
        else:
            rdd = ctx.parallelize(
                list(zip(keys.tolist(), values.tolist())), N_PARTITIONS
            )
        result = pipeline(rdd)
        return {
            "result": result,
            "metrics": metrics.snapshot(),
            "spans": [_span_key(s) for s in tracer.spans()],
            "sim_time": ctx.sim_time(),
        }
    finally:
        ctx.stop()


def assert_equivalent(pipeline, parallel=0):
    boxed = run(pipeline, batched=False, parallel=parallel)
    batched = run(pipeline, batched=True, parallel=parallel)
    # Results: batched buckets are key-sorted, so compare as multisets.
    assert sorted(boxed["result"]) == sorted(batched["result"])
    # Logical shuffle accounting is bit-identical.
    for name in (SHUFFLE_BYTES_WRITTEN, SHUFFLE_BYTES_READ, SHUFFLE_RECORDS):
        assert boxed["metrics"].get(name) == batched["metrics"].get(name), name
    # Pool transport differs between representations (shm for columnar,
    # pickle for boxed) but is host-side only; everything simulated must
    # still match exactly.
    assert drop_pool(boxed["metrics"]) == drop_pool(batched["metrics"])
    # Span sequences match bit-for-bit, including start/end sim times.
    assert boxed["spans"] == batched["spans"]
    assert boxed["sim_time"] == batched["sim_time"]
    return boxed, batched


@PARALLEL_MODES
class TestShuffleEquivalence:
    def test_partition_by(self, parallel):
        boxed, _ = assert_equivalent(
            lambda rdd: rdd.partition_by(
                HashPartitioner(N_PARTITIONS)
            ).collect_records(),
            parallel=parallel,
        )
        assert len(boxed["result"]) == N_RECORDS
        assert boxed["metrics"][SHUFFLE_RECORDS] == N_RECORDS

    def test_partitioning_is_identical(self, parallel):
        # Not just the same multiset globally: every record must land in
        # the same reduce partition under both representations.
        def per_partition(rdd):
            parts = rdd.partition_by(
                HashPartitioner(N_PARTITIONS)
            ).as_records().collect_partitions()
            return [sorted(p) for p in parts]

        boxed = run(per_partition, batched=False, parallel=parallel)
        batched = run(per_partition, batched=True, parallel=parallel)
        assert boxed["result"] == batched["result"]


@PARALLEL_MODES
class TestReduceByKeyEquivalence:
    @pytest.mark.parametrize("op", ["add", "min", "max"])
    def test_reduce_by_key(self, op, parallel):
        boxed, _ = assert_equivalent(
            lambda rdd: rdd.reduce_by_key(
                op=op, num_partitions=N_PARTITIONS
            ).collect_records(),
            parallel=parallel,
        )
        keys, values = make_data()
        expect = {}
        for k, v in zip(keys.tolist(), values.tolist()):
            if k not in expect:
                expect[k] = v
            elif op == "add":
                expect[k] += v
            elif op == "min":
                expect[k] = min(expect[k], v)
            else:
                expect[k] = max(expect[k], v)
        assert dict(boxed["result"]) == expect
        # Map-side combine means one record per distinct key per map task
        # reaches the wire — same count either way.
        assert boxed["metrics"][SHUFFLE_RECORDS] < 2 * N_RECORDS


@PARALLEL_MODES
class TestPregelSuperstepEquivalence:
    def test_one_superstep(self, parallel):
        """A hand-rolled PageRank superstep: contribs -> combine -> update.

        This is the shuffle shape one Pregel iteration generates
        (aggregateMessages with a sum combiner followed by vprog), run
        through the real shuffle machinery under both representations.
        """
        def superstep(rdd):
            contribs = rdd.reduce_by_key(op="add",
                                         num_partitions=N_PARTITIONS)
            ranks = contribs.as_records().map_values(
                lambda s: 15.0 + 85.0 * s
            )
            return ranks.collect_records()

        boxed, batched = assert_equivalent(superstep, parallel=parallel)
        assert len(boxed["result"]) == len(set(make_data()[0].tolist()))
        assert boxed["sim_time"] > 0.0


class TestSerialVsPooled:
    """The pool changes wall-clock only: serial vs pool4, same run."""

    PIPELINES = {
        "partition_by": lambda rdd: rdd.partition_by(
            HashPartitioner(N_PARTITIONS)).collect_records(),
        "reduce_by_key": lambda rdd: rdd.reduce_by_key(
            op="add", num_partitions=N_PARTITIONS).collect_records(),
        "superstep": lambda rdd: rdd.reduce_by_key(
            op="add", num_partitions=N_PARTITIONS
        ).as_records().map_values(
            lambda s: 15.0 + 85.0 * s).collect_records(),
    }

    @pytest.mark.parametrize("name", sorted(PIPELINES))
    @pytest.mark.parametrize("batched", [False, True],
                             ids=["boxed", "batched"])
    def test_bit_identical_across_modes(self, name, batched):
        pipeline = self.PIPELINES[name]
        serial = run(pipeline, batched=batched, parallel=0)
        pooled = run(pipeline, batched=batched, parallel=4)
        assert serial["result"] == pooled["result"]
        assert drop_pool(serial["metrics"]) == drop_pool(pooled["metrics"])
        assert serial["spans"] == pooled["spans"]
        assert serial["sim_time"] == pooled["sim_time"]
        # The pool actually engaged — this is not a vacuous comparison.
        assert pooled["metrics"].get(
            "dataflow.pool.tasks.dispatched", 0) > 0
        assert serial["metrics"].get(
            "dataflow.pool.tasks.dispatched", 0) == 0

    def test_pooled_double_run_identical_including_pool_metrics(self):
        pipeline = self.PIPELINES["reduce_by_key"]
        a = run(pipeline, batched=True, parallel=4)
        b = run(pipeline, batched=True, parallel=4)
        assert a["result"] == b["result"]
        assert a["metrics"] == b["metrics"]
        assert a["spans"] == b["spans"]
        assert a["sim_time"] == b["sim_time"]
