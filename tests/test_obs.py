"""Tests for repro.obs (tracing, exporters) and the metrics extensions."""

import json

import pytest

from repro.common.config import ClusterConfig, MB
from repro.common.metrics import MetricsRegistry
from repro.common.simclock import SimClock, TaskCost
from repro.core.algorithms import PageRank
from repro.core.context import PSGraphContext
from repro.core.runner import GraphRunner
from repro.datasets.generators import powerlaw_graph
from repro.datasets.tencent import write_edges
from repro.obs import (
    INSTANT,
    NOOP_TRACER,
    Tracer,
    chrome_trace,
    metrics_to_dict,
    spans_from_json,
    spans_to_json,
    timeline_report,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_json,
)


# ----------------------------------------------------------------------
# metrics: set_max semantics, histograms, gauges, timer, scoped
# ----------------------------------------------------------------------

class TestSetMax:
    def test_keeps_larger(self):
        r = MetricsRegistry()
        r.set_max("m", 5)
        r.set_max("m", 3)
        assert r.get("m") == 5

    def test_negative_value_never_below_default(self):
        # A max-tracked counter must never read below the fresh-counter
        # default of 0.0 (the documented floor).
        r = MetricsRegistry()
        assert r.set_max("m", -2.0) == 0.0
        assert r.get("m") == 0.0
        assert r.set_max("m", 1.5) == 1.5
        assert r.get("m") == 1.5

    def test_seeds_from_existing_counter(self):
        r = MetricsRegistry()
        r.inc("m", 10)
        r.set_max("m", 4)
        assert r.get("m") == 10


class TestHistogram:
    def test_empty(self):
        r = MetricsRegistry()
        h = r.histogram("h")
        assert h.count == 0
        assert h.percentile(50) == 0.0
        assert h.mean == 0.0
        s = h.summary()
        assert s["count"] == 0 and s["p95"] == 0.0

    def test_single_sample(self):
        r = MetricsRegistry()
        r.observe("h", 7.0)
        h = r.histogram("h")
        assert h.percentile(0) == 7.0
        assert h.percentile(50) == 7.0
        assert h.percentile(100) == 7.0
        assert h.min == 7.0 and h.max == 7.0

    def test_percentile_interpolation(self):
        r = MetricsRegistry()
        for v in (1.0, 2.0, 3.0, 4.0, 5.0):
            r.observe("h", v)
        h = r.histogram("h")
        assert h.percentile(50) == 3.0
        assert h.percentile(25) == 2.0
        assert h.percentile(95) == pytest.approx(4.8)
        assert h.max == 5.0 and h.mean == 3.0

    def test_percentile_out_of_range(self):
        r = MetricsRegistry()
        r.observe("h", 1.0)
        with pytest.raises(ValueError):
            r.histogram("h").percentile(101)

    def test_snapshot_stays_counters_only(self):
        # Benchmarks compare snapshot() dicts; histograms and gauges must
        # not leak into them.
        r = MetricsRegistry()
        r.inc("c", 2)
        r.observe("h", 1.0)
        r.set_gauge("g", 3.0)
        assert r.snapshot() == {"c": 2.0}

    def test_reset_clears_everything(self):
        r = MetricsRegistry()
        r.inc("c")
        r.observe("h", 1.0)
        r.set_gauge("g", 1.0)
        r.reset()
        assert r.snapshot() == {}
        assert list(r.histograms()) == []
        assert r.gauge_snapshot() == {}


class TestGauge:
    def test_high_water_and_updates(self):
        r = MetricsRegistry()
        r.set_gauge("g", 5.0)
        r.set_gauge("g", 2.0)
        snap = r.gauge_snapshot()
        assert snap["g"]["value"] == 2.0
        assert snap["g"]["high"] == 5.0
        assert snap["g"]["updates"] == 2


class TestTimerAndScoped:
    def test_timer_with_sim_clock(self):
        r = MetricsRegistry()
        clock = SimClock()
        with r.timer("t", clock=clock):
            clock.advance(2.5)
        h = r.histogram("t")
        assert h.count == 1
        assert h.max == pytest.approx(2.5)

    def test_timer_wall_clock_records_nonnegative(self):
        r = MetricsRegistry()
        with r.timer("t"):
            pass
        assert r.histogram("t").count == 1
        assert r.histogram("t").min >= 0.0

    def test_scoped_prefixes_everything(self):
        r = MetricsRegistry()
        s = r.scoped("sub")
        s.inc("c", 2)
        s.observe("h", 1.0)
        s.set_gauge("g", 4.0)
        assert r.get("sub.c") == 2.0
        assert r.histogram("sub.h").count == 1
        assert "sub.g" in r.gauge_snapshot()

    def test_scoped_nests(self):
        r = MetricsRegistry()
        r.scoped("a").scoped("b").inc("c")
        assert r.get("a.b.c") == 1.0


# ----------------------------------------------------------------------
# tracer core
# ----------------------------------------------------------------------

class TestTracer:
    def test_add_and_spans(self):
        t = Tracer()
        t.add("driver", "stages", "stage 0", 1.0, 3.0, {"k": 1})
        [s] = t.spans()
        assert s.duration_s == 2.0
        assert s.tags == {"k": 1}
        assert len(t) == 1
        t.clear()
        assert t.spans() == []

    def test_instant(self):
        t = Tracer()
        t.instant("driver", "iterations", "iteration", 2.0, {"epoch": 1})
        [s] = t.spans()
        assert s.kind == INSTANT
        assert s.start_s == s.end_s == 2.0

    def test_clock_span_reads_clock_boundaries(self):
        t = Tracer()
        clock = SimClock()
        clock.advance(1.0)
        with t.clock_span("ps-server-0", "ops", "ps.pull", clock):
            clock.advance(0.5)
        [s] = t.spans()
        assert s.start_s == pytest.approx(1.0)
        assert s.end_s == pytest.approx(1.5)

    def test_cost_span_places_on_serial_timeline(self):
        t = Tracer()
        cost = TaskCost()
        cost.cpu_s = 2.0
        with t.cost_span("executor-0", "s0.p1", "shuffle.write", cost, 10.0):
            cost.disk_s += 3.0
        [s] = t.spans()
        assert s.start_s == pytest.approx(12.0)
        assert s.end_s == pytest.approx(15.0)

    def test_nested_cost_spans_contained(self):
        t = Tracer()
        cost = TaskCost()
        with t.cost_span("e", "r", "outer", cost, 0.0):
            cost.cpu_s += 1.0
            with t.cost_span("e", "r", "inner", cost, 0.0):
                cost.net_s += 2.0
            cost.disk_s += 1.0
        inner, outer = t.spans()
        assert inner.name == "inner" and outer.name == "outer"
        assert outer.start_s <= inner.start_s
        assert inner.end_s <= outer.end_s

    def test_noop_tracer_records_nothing(self):
        clock = SimClock()
        with NOOP_TRACER.clock_span("c", "t", "n", clock):
            clock.advance(1.0)
        NOOP_TRACER.add("c", "t", "n", 0.0, 1.0)
        NOOP_TRACER.instant("c", "t", "n", 0.0)
        assert NOOP_TRACER.spans() == []
        assert NOOP_TRACER.enabled is False


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------

class TestChromeTrace:
    def test_schema(self, tmp_path):
        t = Tracer()
        t.add("driver", "stages", "stage 0", 0.0, 1.5, {"tasks": 4})
        t.add("executor-0", "tasks", "task s0.p0", 0.0, 1.0)
        t.instant("driver", "iterations", "iteration", 1.5, {"epoch": 1})
        path = tmp_path / "trace.json"
        n = write_chrome_trace(str(path), t)
        doc = json.loads(path.read_text())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        events = doc["traceEvents"]
        assert n == len(events)
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == 2
        for e in xs:
            for key in ("ph", "ts", "dur", "pid", "tid", "name"):
                assert key in e
            assert isinstance(e["pid"], int)
            assert isinstance(e["tid"], int)
        # sim seconds exported as microseconds
        stage = next(e for e in xs if e["name"] == "stage 0")
        assert stage["ts"] == 0.0 and stage["dur"] == pytest.approx(1.5e6)
        assert stage["args"] == {"tasks": 4}
        [inst] = [e for e in events if e["ph"] == "i"]
        assert inst["s"] == "t"

    def test_metadata_names_processes_and_threads(self):
        t = Tracer()
        t.add("executor-0", "tasks", "task", 0.0, 1.0)
        doc = chrome_trace(t)
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {(e["name"], e["args"]["name"]) for e in metas}
        assert ("process_name", "executor-0") in names
        assert ("thread_name", "tasks") in names

    def test_components_get_distinct_pids(self):
        t = Tracer()
        t.add("a", "x", "s1", 0.0, 1.0)
        t.add("b", "x", "s2", 0.0, 1.0)
        doc = chrome_trace(t)
        xs = {e["name"]: e["pid"] for e in doc["traceEvents"]
              if e["ph"] == "X"}
        assert xs["s1"] != xs["s2"]


class TestChromeTraceValidation:
    def test_valid_document_has_no_problems(self):
        t = Tracer()
        t.add("driver", "stages", "stage 0", 0.0, 2.0, {"tasks": 4})
        t.add("executor-0", "s0.p0", "task", 0.0, 1.0)
        t.add("executor-0", "s0.p0", "ps.pull", 0.2, 0.5)  # nested
        t.instant("driver", "iterations", "iteration", 2.0)
        assert validate_chrome_trace(chrome_trace(t)) == []

    def test_missing_trace_events(self):
        assert validate_chrome_trace({}) == [
            "traceEvents missing or not a list"]

    def test_flags_missing_phase_and_bad_fields(self):
        doc = {"traceEvents": [
            {"name": "x"},
            {"ph": "X", "pid": "a", "tid": 1, "ts": 0.0, "dur": 1.0},
            {"ph": "X", "pid": 1, "tid": 1, "ts": -5.0, "dur": 1.0},
            {"ph": "X", "pid": 1, "tid": 1, "ts": 0.0, "dur": -1.0},
            {"ph": "q", "pid": 1, "tid": 1, "ts": 0.0},
        ]}
        problems = validate_chrome_trace(doc)
        assert any("missing ph" in p for p in problems)
        assert any("non-integer pid" in p for p in problems)
        assert any("bad ts" in p for p in problems)
        assert any("bad dur" in p for p in problems)
        assert any("unsupported phase" in p for p in problems)

    def test_flags_partial_overlap_on_one_thread(self):
        # Two X spans that overlap without nesting: a corrupted serial
        # timeline the viewer would silently mis-render.
        doc = {"traceEvents": [
            {"ph": "X", "name": "a", "pid": 1, "tid": 1,
             "ts": 0.0, "dur": 10.0},
            {"ph": "X", "name": "b", "pid": 1, "tid": 1,
             "ts": 5.0, "dur": 10.0},
        ]}
        problems = validate_chrome_trace(doc)
        assert any("partially overlaps" in p for p in problems)

    def test_flags_unclosed_begin(self):
        doc = {"traceEvents": [
            {"ph": "B", "name": "a", "pid": 1, "tid": 1, "ts": 0.0},
        ]}
        problems = validate_chrome_trace(doc)
        assert any("unclosed B" in p for p in problems)

    def test_real_run_trace_validates(self):
        tracer = Tracer()
        _run_pagerank(tracer)
        assert validate_chrome_trace(chrome_trace(tracer)) == []


class TestSpanRoundTrip:
    def test_spans_round_trip_losslessly(self):
        t = Tracer()
        t.add("driver", "stages", "stage 0", 0.0, 1.5,
              {"tasks": 4, "kind": "shuffle-0"})
        t.add("executor-1", "s0.p1", "task", 0.25, 1.0)
        t.instant("driver", "chaos", "chaos.kill_executor", 0.5,
                  {"target": "executor-1"})
        docs = spans_to_json(t)
        text = json.dumps(docs)  # survives actual JSON encoding
        rebuilt = spans_from_json(json.loads(text))
        assert len(rebuilt) == len(t.spans())
        for a, b in zip(t.spans(), rebuilt):
            assert (a.component, a.track, a.name, a.kind) == \
                   (b.component, b.track, b.name, b.kind)
            assert a.start_s == b.start_s and a.end_s == b.end_s
            assert (a.tags or None) == (b.tags or None)

    def test_instant_kind_preserved(self):
        t = Tracer()
        t.instant("driver", "alerts", "alert x", 3.0)
        [span] = spans_from_json(spans_to_json(t))
        assert span.kind == INSTANT
        assert span.start_s == span.end_s == 3.0


class TestTimelineReport:
    def test_empty(self):
        assert "(no stage spans recorded)" in timeline_report(Tracer())

    def test_stages_and_iterations(self):
        t = Tracer()
        t.add("driver", "stages", "stage 0 (result)", 0.0, 1.0,
              {"stage": 0, "kind": "result", "tasks": 4})
        t.instant("driver", "iterations", "iteration", 1.0, {"epoch": 1})
        report = timeline_report(t, sim_time_s=2.0)
        assert "result" in report
        assert "per-iteration" in report
        assert "run sim-time" in report
        assert "50.0%" in report  # 1.0 of 2.0 covered


class TestMetricsDump:
    def test_round_trip(self, tmp_path):
        r = MetricsRegistry()
        r.inc("c", 2)
        r.observe("h", 1.0)
        r.set_gauge("g", 3.0)
        path = tmp_path / "metrics.json"
        write_metrics_json(str(path), r)
        doc = json.loads(path.read_text())
        assert doc == metrics_to_dict(r)
        assert doc["counters"]["c"] == 2.0
        assert doc["histograms"]["h"]["count"] == 1
        assert doc["gauges"]["g"]["value"] == 3.0


# ----------------------------------------------------------------------
# end to end: tracing a real run
# ----------------------------------------------------------------------

def _run_pagerank(tracer):
    cluster = ClusterConfig(
        num_executors=4, executor_mem_bytes=256 * MB,
        num_servers=2, server_mem_bytes=256 * MB,
    )
    with PSGraphContext(cluster, app_name="obs-test",
                        tracer=tracer) as ctx:
        src, dst = powerlaw_graph(200, 900, seed=3)
        write_edges(ctx.hdfs, "/input/edges", src, dst, num_files=4)
        result = GraphRunner(ctx).run(
            PageRank(max_iterations=4), "/input/edges"
        )
        return result, ctx.sim_time(), dict(ctx.metrics.snapshot())


class TestEndToEnd:
    def test_traced_run_produces_expected_spans(self):
        tracer = Tracer()
        _, sim_time, _ = _run_pagerank(tracer)
        spans = tracer.spans()
        names = {s.name for s in spans}
        tracks = {(s.component, s.track) for s in spans}
        # driver stage spans + phase spans + iteration instants
        assert any(n.startswith("stage ") for n in names)
        assert {"load", "transform"} <= names
        assert ("driver", "iterations") in tracks
        # executor task rows and per-task detail rows
        assert any(t == "tasks" for _, t in tracks)
        assert any(t.startswith("s") and ".p" in t for _, t in tracks)
        # PS server compute and agent-side request spans
        assert any(n.startswith("ps.") for n in names)
        # every span lies within the run and is well-formed
        for s in spans:
            assert s.end_s >= s.start_s
            assert s.end_s <= sim_time + 1e-9
        # stage spans tile the driver timeline without exceeding run time
        stage_total = sum(
            s.duration_s for s in spans
            if s.component == "driver" and s.track == "stages"
        )
        assert stage_total <= sim_time + 1e-9

    def test_timeline_report_consistent_with_run(self):
        tracer = Tracer()
        _, sim_time, _ = _run_pagerank(tracer)
        report = timeline_report(tracer, sim_time_s=sim_time)
        assert f"run sim-time     : {sim_time:.4f} s" in report

    def test_noop_run_identical_to_traced_run(self):
        # Tracing must be observation-only: counters and sim-time agree
        # between a no-op run and a recording run.
        _, time_noop, counters_noop = _run_pagerank(NOOP_TRACER)
        _, time_traced, counters_traced = _run_pagerank(Tracer())
        assert time_noop == time_traced
        assert counters_noop == counters_traced

    def test_chrome_export_of_real_run_is_valid_json(self, tmp_path):
        tracer = Tracer()
        _run_pagerank(tracer)
        path = tmp_path / "trace.json"
        n = write_chrome_trace(str(path), tracer)
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == n > 0


class TestCliFlags:
    def test_trace_metrics_timeline_flags(self, tmp_path, capsys):
        from repro.cli import main

        edges = tmp_path / "edges.tsv"
        edges.write_text("0\t1\n1\t2\n2\t0\n")
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        rc = main([
            "pagerank", "--input", str(edges), "--iterations", "2",
            "--executors", "2", "--servers", "1",
            "--trace", str(trace), "--metrics", str(metrics), "--timeline",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "per-stage timeline" in out
        doc = json.loads(trace.read_text())
        assert doc["traceEvents"]
        mdoc = json.loads(metrics.read_text())
        assert "dataflow.task.duration_s" in mdoc["histograms"]
