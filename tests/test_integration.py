"""Integration tests: cross-module flows and PSGraph-vs-GraphX agreement."""

import numpy as np
import pytest

from repro.common.config import ClusterConfig
from repro.core.algorithms import (
    CommonNeighbor,
    KCore,
    PageRank,
    TriangleCount,
)
from repro.core.context import PSGraphContext
from repro.core.ops import edges_from_arrays
from repro.core.runner import GraphRunner
from repro.datasets.generators import powerlaw_graph
from repro.datasets.tencent import write_edges
from repro.dataflow.context import SparkContext
from repro.graphx import algorithms as gxalgo
from repro.graphx.graph import Graph


def make_psg(num_executors=4, num_servers=2):
    cluster = ClusterConfig(
        num_executors=num_executors, executor_mem_bytes=1 << 40,
        num_servers=num_servers, server_mem_bytes=1 << 40,
    )
    return PSGraphContext(cluster)


@pytest.fixture
def psg():
    ctx = make_psg()
    yield ctx
    ctx.stop()


class TestSystemsAgree:
    """PSGraph and GraphX must compute the same answers."""

    def test_pagerank_agrees_across_systems(self, psg):
        src, dst = powerlaw_graph(60, 250, seed=51)
        edges = edges_from_arrays(psg.spark, src, dst)
        ps_result = PageRank(max_iterations=150, tol=1e-9).transform(
            psg, edges
        )
        ps_ranks = {r["vertex"]: r["rank"]
                    for r in ps_result.output.collect()}

        gx = SparkContext(ClusterConfig(
            num_executors=4, executor_mem_bytes=1 << 40))
        try:
            g = Graph.from_edges(gx, src, dst)
            ids, ranks, _ = gxalgo.pagerank(
                g, max_iterations=150, tol=1e-11
            )
            gx_ranks = dict(zip(ids.tolist(), ranks.tolist()))
        finally:
            gx.stop()
        # Same fixed point (the transient iterates differ: delta-
        # accumulation vs power iteration, so compare near convergence).
        assert set(ps_ranks) == set(gx_ranks)
        for v in ps_ranks:
            assert ps_ranks[v] == pytest.approx(gx_ranks[v], rel=1e-5)

    def test_triangle_count_agrees(self, psg):
        src, dst = powerlaw_graph(40, 160, seed=52)
        edges = edges_from_arrays(psg.spark, src, dst)
        ps_count = TriangleCount().transform(psg, edges).stats["triangles"]
        gx = SparkContext(ClusterConfig(
            num_executors=4, executor_mem_bytes=1 << 40))
        try:
            g = Graph.from_edges(gx, src, dst)
            gx_count = gxalgo.triangle_count(g)
        finally:
            gx.stop()
        assert ps_count == gx_count

    def test_kcore_agrees(self, psg):
        raw = powerlaw_graph(40, 140, seed=53)
        lo = np.minimum(raw[0], raw[1])
        hi = np.maximum(raw[0], raw[1])
        keep = lo != hi
        pairs = np.unique(np.stack([lo[keep], hi[keep]], 1), axis=0)
        src, dst = pairs[:, 0], pairs[:, 1]
        edges = edges_from_arrays(psg.spark, src, dst)
        ps = {r["vertex"]: r["coreness"]
              for r in KCore().transform(psg, edges).output.collect()}
        gx = SparkContext(ClusterConfig(
            num_executors=4, executor_mem_bytes=1 << 40))
        try:
            g = Graph.from_edges(gx, src, dst)
            ids, cores, _ = gxalgo.kcore(g, max_iterations=60)
            gxc = dict(zip(ids.tolist(), cores.tolist()))
        finally:
            gx.stop()
        assert ps == gxc


class TestPipelines:
    def test_two_algorithms_share_one_session(self, psg):
        """The Spark-pipeline selling point: stay in one session."""
        src, dst = powerlaw_graph(50, 200, seed=54)
        write_edges(psg.hdfs, "/in/g", src, dst, num_files=4)
        runner = GraphRunner(psg)
        pr = runner.run(PageRank(max_iterations=5), "/in/g", "/out/pr")
        cn = runner.run(CommonNeighbor(), "/in/g", "/out/cn")
        assert pr.output.count() > 0
        assert cn.output.count() == len(src)
        assert len(psg.hdfs.listdir("/out/pr")) > 0
        assert len(psg.hdfs.listdir("/out/cn")) > 0

    def test_dataframe_postprocessing_of_algorithm_output(self, psg):
        src, dst = powerlaw_graph(50, 200, seed=55)
        edges = edges_from_arrays(psg.spark, src, dst)
        result = PageRank(max_iterations=10).transform(psg, edges)
        # Join ranks with coreness in DataFrame land.
        cores = KCore().transform(psg, edges).output
        joined = result.output.join(cores, on="vertex")
        rows = joined.collect()
        assert {"vertex", "rank", "coreness"} <= set(rows[0])
        agg = joined.group_by("coreness").agg(mean_rank="mean:rank")
        assert agg.count() >= 1

    def test_metrics_tell_the_papers_story(self, psg):
        """PSGraph moves model traffic via PS, not via shuffle joins."""
        from repro.common.metrics import PS_PULL_BYTES, SHUFFLE_BYTES_WRITTEN

        src, dst = powerlaw_graph(80, 400, seed=56)
        edges = edges_from_arrays(psg.spark, src, dst)
        PageRank(max_iterations=10, tol=0.0).transform(psg, edges)
        pulls = psg.metrics.get(PS_PULL_BYTES)
        shuffle = psg.metrics.get(SHUFFLE_BYTES_WRITTEN)
        # One groupBy shuffle up front; iterations hit only the PS.
        assert pulls > shuffle


class TestFailureIntegration:
    def test_cn_with_server_failure_matches_clean_run(self, psg):
        src, dst = powerlaw_graph(60, 240, seed=57)
        write_edges(psg.hdfs, "/in/f", src, dst, num_files=4)
        runner = GraphRunner(psg)
        result = runner.run(
            CommonNeighbor(checkpoint=True, batch_size=64), "/in/f"
        )
        state = {"n": 0}

        def chaos(_s, _p, kind):
            if kind == "result":
                state["n"] += 1
                if state["n"] == 2:
                    psg.ps.kill_server(0)

        psg.spark.add_task_hook(chaos)
        with_failure = sorted(result.output.collect_tuples())
        psg.spark.remove_task_hook(chaos)
        psg.ps.recover()
        clean = sorted(
            runner.run(CommonNeighbor(batch_size=64), "/in/f")
            .output.collect_tuples()
        )
        assert with_failure == clean
        assert psg.ps.master.recoveries >= 1

    def test_executor_failure_during_pagerank_iterations(self, psg):
        src, dst = powerlaw_graph(60, 240, seed=58)
        edges = edges_from_arrays(psg.spark, src, dst)
        state = {"n": 0}

        def chaos(_s, _p, kind):
            state["n"] += 1
            if state["n"] == 25:
                psg.spark.kill_executor(2)

        psg.spark.add_task_hook(chaos)
        result = PageRank(max_iterations=8, tol=0.0).transform(psg, edges)
        psg.spark.remove_task_hook(chaos)
        from repro.core.algorithms import reference_delta_pagerank

        ids, ref = reference_delta_pagerank(src, dst, result.iterations)
        got = {r["vertex"]: r["rank"] for r in result.output.collect()}
        for v, r in zip(ids.tolist(), ref.tolist()):
            assert got[v] == pytest.approx(r, rel=1e-9)
        assert psg.spark.executors[2].container.restarts == 1


class TestChaosMonkey:
    def test_rules_fire_once_and_job_survives(self, psg):
        from repro.testing import ChaosMonkey

        src, dst = powerlaw_graph(60, 240, seed=59)
        write_edges(psg.hdfs, "/in/cm", src, dst, num_files=4)
        runner = GraphRunner(psg)
        result = runner.run(
            CommonNeighbor(checkpoint=True, batch_size=64), "/in/cm"
        )
        monkey = (ChaosMonkey(psg)
                  .kill_executor(1, after_tasks=1)
                  .kill_server(0, after_tasks=2))
        with monkey:
            count = result.output.count()
        assert count == 240
        assert monkey.fired == 2
        # Re-running after the block fires nothing further.
        result.output.count()
        assert monkey.fired == 2

    def test_hook_removed_on_exit(self, psg):
        from repro.testing import ChaosMonkey

        monkey = ChaosMonkey(psg).kill_executor(0, after_tasks=1)
        with monkey:
            pass
        psg.spark.parallelize(range(4)).count()
        assert monkey.fired == 0  # disarmed: no kills outside the block


class TestDeterminism:
    def test_sim_time_is_reproducible(self):
        """The cost model is deterministic: identical runs, identical
        simulated times (a regression lock on the calibration)."""
        from repro.experiments.figure6 import run_figure6

        a = run_figure6(scale_ds1=5e-7, cells=[("PageRank", "DS1")],
                        systems=("PSGraph",))[0]
        b = run_figure6(scale_ds1=5e-7, cells=[("PageRank", "DS1")],
                        systems=("PSGraph",))[0]
        assert a.sim_seconds == b.sim_seconds
        assert a.extra == b.extra

    def test_algorithm_outputs_reproducible(self, psg):
        src, dst = powerlaw_graph(50, 200, seed=60)
        edges = edges_from_arrays(psg.spark, src, dst)
        r1 = PageRank(max_iterations=8).transform(psg, edges)
        r2 = PageRank(max_iterations=8).transform(psg, edges)
        assert sorted(r1.output.collect_tuples()) == \
            sorted(r2.output.collect_tuples())
