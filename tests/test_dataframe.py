"""Unit tests for the DataFrame layer."""

import pytest

from repro.common.errors import ConfigError
from repro.dataflow.dataframe import DataFrame


def make_df(sc, rows, schema):
    return DataFrame(sc.parallelize(rows), schema)


@pytest.fixture
def people(sc):
    rows = [
        (1, "ann", 34, 1200.0),
        (2, "bob", 28, 800.0),
        (3, "cyd", 34, 1500.0),
        (4, "dan", 51, 700.0),
    ]
    return make_df(sc, rows, ["id", "name", "age", "spend"])


class TestBasics:
    def test_duplicate_columns_rejected(self, sc):
        with pytest.raises(ConfigError):
            make_df(sc, [], ["a", "a"])

    def test_columns(self, people):
        assert people.columns == ["id", "name", "age", "spend"]

    def test_count_and_collect(self, people):
        assert people.count() == 4
        rows = people.collect()
        assert rows[0]["name"] in {"ann", "bob", "cyd", "dan"}
        assert len(rows) == 4

    def test_collect_tuples(self, people):
        tuples = people.collect_tuples()
        assert all(len(t) == 4 for t in tuples)

    def test_select_projects_in_order(self, people):
        got = people.select("age", "id").collect_tuples()
        assert sorted(got) == [(28, 2), (34, 1), (34, 3), (51, 4)]

    def test_select_unknown_column(self, people):
        with pytest.raises(ConfigError):
            people.select("ghost")

    def test_filter(self, people):
        got = people.filter(lambda r: r["age"] == 34).count()
        assert got == 2

    def test_with_column_appends(self, people):
        df = people.with_column("rich", lambda r: r["spend"] > 1000)
        assert df.columns[-1] == "rich"
        rich = {r["name"] for r in df.collect() if r["rich"]}
        assert rich == {"ann", "cyd"}

    def test_with_column_replaces(self, people):
        df = people.with_column("age", lambda r: r["age"] + 1)
        assert df.columns == people.columns
        assert sorted(r["age"] for r in df.collect()) == [29, 35, 35, 52]

    def test_rename(self, people):
        df = people.rename("spend", "amount")
        assert "amount" in df.columns
        assert "spend" not in df.columns

    def test_order_by_and_limit(self, people):
        top = people.order_by("spend", ascending=False).limit(2)
        names = [r["name"] for r in top.collect()]
        assert names == ["cyd", "ann"]

    def test_show_returns_table(self, people, capsys):
        out = people.show(2)
        assert "id" in out
        assert out.count("\n") >= 4


class TestJoins:
    def test_inner_join(self, sc, people):
        cities = make_df(sc, [(1, "sz"), (3, "bj"), (9, "sh")],
                         ["id", "city"])
        joined = people.join(cities, on="id")
        got = {r["name"]: r["city"] for r in joined.collect()}
        assert got == {"ann": "sz", "cyd": "bj"}

    def test_left_join_fills_none(self, sc, people):
        cities = make_df(sc, [(1, "sz")], ["id", "city"])
        joined = people.join(cities, on="id", how="left")
        got = {r["name"]: r["city"] for r in joined.collect()}
        assert got["ann"] == "sz"
        assert got["bob"] is None

    def test_join_schema_order(self, sc, people):
        cities = make_df(sc, [(1, "sz")], ["id", "city"])
        joined = people.join(cities, on="id")
        assert joined.columns == ["id", "name", "age", "spend", "city"]

    def test_unsupported_join_type(self, sc, people):
        cities = make_df(sc, [(1, "sz")], ["id", "city"])
        with pytest.raises(ConfigError):
            people.join(cities, on="id", how="cross")


class TestGroupBy:
    def test_sum_and_count(self, people):
        agg = people.group_by("age").agg(total="sum:spend", n="count:id")
        got = {r["age"]: (r["total"], r["n"]) for r in agg.collect()}
        assert got[34] == (2700.0, 2)
        assert got[28] == (800.0, 1)

    def test_min_max(self, people):
        agg = people.group_by("age").agg(lo="min:spend", hi="max:spend")
        got = {r["age"]: (r["lo"], r["hi"]) for r in agg.collect()}
        assert got[34] == (1200.0, 1500.0)

    def test_mean(self, people):
        agg = people.group_by("age").agg(avg="mean:spend")
        got = {r["age"]: r["avg"] for r in agg.collect()}
        assert got[34] == pytest.approx(1350.0)

    def test_collect_list(self, people):
        agg = people.group_by("age").agg(names="collect_list:name")
        got = {r["age"]: sorted(r["names"]) for r in agg.collect()}
        assert got[34] == ["ann", "cyd"]

    def test_multi_key_group(self, sc):
        df = make_df(sc, [(1, "a", 2), (1, "a", 3), (2, "a", 5)],
                     ["k1", "k2", "v"])
        agg = df.group_by("k1", "k2").agg(s="sum:v")
        got = {(r["k1"], r["k2"]): r["s"] for r in agg.collect()}
        assert got == {(1, "a"): 5, (2, "a"): 5}

    def test_unknown_agg_rejected(self, people):
        with pytest.raises(ConfigError):
            people.group_by("age").agg(x="median:spend")


class TestSetOps:
    def test_distinct(self, sc):
        df = make_df(sc, [(1, "a"), (1, "a"), (2, "b")], ["id", "x"])
        assert df.distinct().count() == 2

    def test_union(self, sc):
        a = make_df(sc, [(1, "a")], ["id", "x"])
        b = make_df(sc, [(2, "b")], ["id", "x"])
        assert sorted(a.union(b).collect_tuples()) == [(1, "a"), (2, "b")]

    def test_union_schema_mismatch(self, sc):
        a = make_df(sc, [(1,)], ["id"])
        b = make_df(sc, [(2,)], ["other"])
        with pytest.raises(ConfigError):
            a.union(b)
