"""Direct unit + property tests of the PS server-side stores and psFuncs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import PSError
from repro.ps.psfunc import PartialDot, RankOneUpdate
from repro.ps.storage import (
    ColumnShardStore,
    DenseRowStore,
    NeighborTableStore,
    SparseRowStore,
)


class TestDenseRowStore:
    def test_get_set_inc(self):
        s = DenseRowStore(np.array([2, 5, 9]), cols=2)
        s.set_rows(np.array([5]), np.array([[1.0, 2.0]]))
        s.inc_rows(np.array([5, 5]), np.array([[1.0, 1.0], [1.0, 1.0]]))
        np.testing.assert_allclose(
            s.get_rows(np.array([5]))[0], [3.0, 4.0]
        )

    def test_column_ops(self):
        s = DenseRowStore(np.array([0, 1]), cols=3)
        s.set_rows(np.array([1]), np.array([7.0]), col=2)
        assert s.get_rows(np.array([1]), col=2)[0] == 7.0
        assert s.get_rows(np.array([1]))[0].tolist() == [0.0, 0.0, 7.0]

    def test_missing_key_raises(self):
        s = DenseRowStore(np.array([0, 2]), cols=1)
        with pytest.raises(PSError):
            s.get_rows(np.array([1]))
        with pytest.raises(PSError):
            s.get_rows(np.array([99]))

    def test_get_returns_copy(self):
        s = DenseRowStore(np.array([0]), cols=1)
        row = s.get_rows(np.array([0]))
        row[0] = 42.0
        assert s.get_rows(np.array([0]))[0] == 0.0

    def test_init_value(self):
        s = DenseRowStore(np.array([0, 1]), cols=2, init=-1.0)
        assert (s.array == -1.0).all()

    def test_snapshot_restore(self):
        s = DenseRowStore(np.array([0, 1]), cols=1)
        s.set_rows(np.array([1]), np.array([5.0]))
        snap = s.snapshot()
        s.set_rows(np.array([1]), np.array([9.0]))
        s.restore(snap)
        assert s.get_rows(np.array([1]))[0] == 5.0

    def test_nbytes(self):
        s = DenseRowStore(np.arange(10), cols=4)
        assert s.nbytes == 10 * 4 * 8 + 10 * 8

    @settings(deadline=None, max_examples=25)
    @given(st.lists(st.tuples(st.integers(0, 9), st.floats(-5, 5)),
                    max_size=30))
    def test_inc_matches_numpy(self, updates):
        s = DenseRowStore(np.arange(10), cols=1)
        ref = np.zeros(10)
        for k, v in updates:
            s.inc_rows(np.array([k]), np.array([v]))
            ref[k] += v
        np.testing.assert_allclose(s.array[:, 0], ref)


class TestSparseRowStore:
    def test_untouched_rows_read_zero(self):
        s = SparseRowStore(cols=3)
        out = s.get_rows(np.array([100, 5]))
        assert out.shape == (2, 3)
        assert (out == 0).all()

    def test_inc_materializes(self):
        s = SparseRowStore(cols=2)
        s.inc_rows(np.array([7]), np.array([[1.0, 2.0]]))
        assert s.get_rows(np.array([7]))[0].tolist() == [1.0, 2.0]
        assert s.nbytes == 8 + 2 * 8

    def test_set_and_col(self):
        s = SparseRowStore(cols=2)
        s.set_rows(np.array([1]), np.array([4.0]), col=1)
        assert s.get_rows(np.array([1]), col=1)[0] == 4.0

    def test_snapshot_is_independent(self):
        s = SparseRowStore(cols=1)
        s.set_rows(np.array([3]), np.array([1.0]))
        snap = s.snapshot()
        s.set_rows(np.array([3]), np.array([2.0]))
        s.restore(snap)
        assert s.get_rows(np.array([3]))[0] == 1.0


class TestColumnShardStore:
    def test_slices(self):
        s = ColumnShardStore(rows=4, col_keys=np.array([2, 3]))
        s.set_row_slices(np.array([1]), np.array([[1.0, 2.0]]))
        np.testing.assert_allclose(
            s.get_row_slices(np.array([1]))[0], [1.0, 2.0]
        )

    def test_inc_accumulates_duplicates(self):
        s = ColumnShardStore(rows=3, col_keys=np.array([0]))
        s.inc_row_slices(np.array([1, 1]), np.ones((2, 1)))
        assert s.get_row_slices(np.array([1]))[0, 0] == 2.0

    def test_partial_dot(self):
        s = ColumnShardStore(rows=3, col_keys=np.array([0, 1]),
                             dtype=np.float64)
        s.set_row_slices(np.arange(3), np.arange(6).reshape(3, 2))
        got = s.partial_dot(np.array([0, 1]), np.array([2, 2]))
        # row0 . row2 = 0*4 + 1*5 = 5 ; row1 . row2 = 2*4 + 3*5 = 23
        np.testing.assert_allclose(got, [5.0, 23.0])

    def test_snapshot_restore(self):
        s = ColumnShardStore(rows=2, col_keys=np.array([0]))
        s.set_row_slices(np.array([0]), np.array([[9.0]]))
        snap = s.snapshot()
        s.set_row_slices(np.array([0]), np.array([[1.0]]))
        s.restore(snap)
        assert s.get_row_slices(np.array([0]))[0, 0] == 9.0


class TestNeighborTableStore:
    def test_merge_dedupes_and_sorts(self):
        s = NeighborTableStore()
        s.append_neighbors(1, np.array([5, 3]))
        s.append_neighbors(1, np.array([3, 7]))
        assert s.get_neighbors(np.array([1]))[0].tolist() == [3, 5, 7]

    def test_degree_and_count(self):
        s = NeighborTableStore()
        s.append_neighbors(1, np.array([2]))
        s.append_neighbors(4, np.array([1, 2, 3]))
        assert s.degree(np.array([1, 4, 9])).tolist() == [1, 3, 0]
        assert s.num_vertices() == 2

    def test_compact_roundtrip(self):
        s = NeighborTableStore()
        for v in (3, 1, 7):
            s.append_neighbors(v, np.array([v + 1, v + 2]))
        before = {v: s.get_neighbors(np.array([v]))[0].tolist()
                  for v in (1, 3, 7)}
        s.compact()
        assert s.is_compacted
        after = {v: s.get_neighbors(np.array([v]))[0].tolist()
                 for v in (1, 3, 7)}
        assert before == after
        assert s.degree(np.array([1, 3, 7, 9])).tolist() == [2, 2, 2, 0]

    def test_write_after_compact_reopens(self):
        s = NeighborTableStore()
        s.append_neighbors(1, np.array([2]))
        s.compact()
        s.append_neighbors(3, np.array([4]))
        assert not s.is_compacted
        # Note: compaction drops the dict form, so prior entries live only
        # in CSR; writes after compact start a fresh dict (documented
        # behaviour — compaction is for read-only phases).
        assert s.get_neighbors(np.array([3]))[0].tolist() == [4]

    def test_snapshot_restore_both_forms(self):
        s = NeighborTableStore()
        s.append_neighbors(1, np.array([2, 3]))
        snap = s.snapshot()
        s2 = NeighborTableStore()
        s2.restore(snap)
        assert s2.get_neighbors(np.array([1]))[0].tolist() == [2, 3]
        s.compact()
        snap_csr = s.snapshot()
        s3 = NeighborTableStore()
        s3.restore(snap_csr)
        assert s3.is_compacted
        assert s3.get_neighbors(np.array([1]))[0].tolist() == [2, 3]

    @settings(deadline=None, max_examples=25)
    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 20)),
                    max_size=40))
    def test_tables_match_reference_sets(self, pairs):
        s = NeighborTableStore()
        ref: dict = {}
        for v, n in pairs:
            s.append_neighbors(v, np.array([n]))
            ref.setdefault(v, set()).add(n)
        for v, expect in ref.items():
            got = s.get_neighbors(np.array([v]))[0].tolist()
            assert got == sorted(expect)


class TestPsFuncsDirect:
    def test_partial_dot_merge_sums_shards(self):
        rng = np.random.default_rng(0)
        full = rng.standard_normal((5, 6))
        shard_a = ColumnShardStore(5, np.array([0, 1, 2]))
        shard_b = ColumnShardStore(5, np.array([3, 4, 5]))
        shard_a.array[:] = full[:, :3]
        shard_b.array[:] = full[:, 3:]
        f = PartialDot(np.array([0, 1]), np.array([2, 3]))
        merged = f.merge([f.apply(shard_a), f.apply(shard_b)])
        expect = np.einsum("ij,ij->i", full[[0, 1]], full[[2, 3]])
        np.testing.assert_allclose(merged, expect, rtol=1e-6)

    def test_rank_one_update_shardwise_equals_full(self):
        rng = np.random.default_rng(1)
        full = rng.standard_normal((4, 4))
        shard_a = ColumnShardStore(4, np.array([0, 1]), dtype=np.float64)
        shard_b = ColumnShardStore(4, np.array([2, 3]), dtype=np.float64)
        shard_a.array[:] = full[:, :2]
        shard_b.array[:] = full[:, 2:]
        left, right = np.array([0]), np.array([2])
        g = np.array([0.5])
        f = RankOneUpdate(left, right, g)
        f.apply(shard_a)
        f.apply(shard_b)
        ref = full.copy()
        old0 = ref[0].copy()
        ref[0] += 0.5 * ref[2]
        ref[2] += 0.5 * old0
        got = np.hstack([shard_a.array, shard_b.array])
        np.testing.assert_allclose(got, ref, rtol=1e-6)
