"""Correctness tests for the PSGraph algorithms (vs references/networkx)."""

import networkx as nx
import numpy as np
import pytest

from repro.common.config import ClusterConfig
from repro.common.metrics import PS_PULL_BYTES
from repro.common.rng import make_rng
from repro.core.algorithms import (
    CommonNeighbor,
    FastUnfolding,
    KCore,
    LabelPropagation,
    Line,
    PageRank,
    TriangleCount,
    common_neighbor_reference,
    link_prediction_score,
    reference_delta_pagerank,
)
from repro.core.context import PSGraphContext
from repro.core.ops import edges_from_arrays
from repro.core.runner import GraphRunner
from repro.datasets.generators import community_graph, powerlaw_graph
from repro.datasets.tencent import write_edges


def make_psg(num_executors=3, num_servers=2):
    cluster = ClusterConfig(
        num_executors=num_executors, executor_mem_bytes=1 << 40,
        num_servers=num_servers, server_mem_bytes=1 << 40,
    )
    return PSGraphContext(cluster)


@pytest.fixture
def psg():
    ctx = make_psg()
    yield ctx
    ctx.stop()


class TestPageRank:
    def test_matches_reference_exactly(self, psg):
        src, dst = powerlaw_graph(60, 250, seed=11)
        edges = edges_from_arrays(psg.spark, src, dst)
        result = PageRank(max_iterations=15, tol=0.0).transform(psg, edges)
        got = {r["vertex"]: r["rank"] for r in result.output.collect()}
        ids, ranks = reference_delta_pagerank(src, dst, result.iterations)
        assert set(got) == set(ids.tolist())
        for v, r in zip(ids.tolist(), ranks.tolist()):
            assert got[v] == pytest.approx(r, rel=1e-9)

    def test_converges_under_tolerance(self, psg):
        src, dst = powerlaw_graph(50, 200, seed=12)
        edges = edges_from_arrays(psg.spark, src, dst)
        result = PageRank(max_iterations=100, tol=1e-6).transform(
            psg, edges
        )
        assert result.iterations < 100
        assert result.stats["residual"] <= 1e-6 * 51

    def test_agrees_with_networkx_after_normalization(self, psg):
        # Simple graph without dangling vertices.
        rng = make_rng(13)
        n = 40
        src = np.repeat(np.arange(n), 3)
        dst = rng.integers(0, n, size=3 * n)
        keep = src != dst
        src, dst = src[keep], dst[keep]
        pairs = np.unique(np.stack([src, dst], 1), axis=0)
        src, dst = pairs[:, 0], pairs[:, 1]
        edges = edges_from_arrays(psg.spark, src, dst)
        result = PageRank(max_iterations=100, tol=1e-12).transform(
            psg, edges
        )
        got = {r["vertex"]: r["rank"] for r in result.output.collect()}
        nxg = nx.DiGraph()
        nxg.add_edges_from(zip(src.tolist(), dst.tolist()))
        expect = nx.pagerank(nxg, alpha=0.85, tol=1e-12, max_iter=500)
        total = sum(got.values())
        for v, r in got.items():
            assert r / total == pytest.approx(expect[v], abs=1e-4)

    def test_delta_pagerank_cheaper_than_full_pull(self, psg):
        # Late iterations pull/push near-zero deltas; the pull volume per
        # iteration must not grow (sanity of the sparsity argument).
        src, dst = powerlaw_graph(80, 400, seed=14)
        edges = edges_from_arrays(psg.spark, src, dst)
        result = PageRank(max_iterations=25, tol=0.0).transform(psg, edges)
        assert result.iterations == 25
        # Residual decays ~ damping^k: far below the initial sum (~0.15*n).
        assert result.stats["residual"] < 0.15 * 80 * 0.85 ** 20


class TestKCore:
    def test_matches_networkx(self, psg):
        raw = powerlaw_graph(50, 220, seed=15)
        lo = np.minimum(raw[0], raw[1])
        hi = np.maximum(raw[0], raw[1])
        keep = lo != hi
        pairs = np.unique(np.stack([lo[keep], hi[keep]], 1), axis=0)
        src, dst = pairs[:, 0], pairs[:, 1]
        edges = edges_from_arrays(psg.spark, src, dst)
        result = KCore(max_iterations=80).transform(psg, edges)
        got = {r["vertex"]: r["coreness"] for r in result.output.collect()}
        nxg = nx.Graph()
        nxg.add_edges_from(zip(src.tolist(), dst.tolist()))
        expect = nx.core_number(nxg)
        assert got == expect

    def test_duplicate_edges_do_not_inflate_core(self, psg):
        src = np.array([0, 0, 0, 1])
        dst = np.array([1, 1, 1, 2])
        edges = edges_from_arrays(psg.spark, src, dst)
        result = KCore().transform(psg, edges)
        got = {r["vertex"]: r["coreness"] for r in result.output.collect()}
        assert got == {0: 1, 1: 1, 2: 1}


class TestCommonNeighbor:
    def test_matches_reference(self, psg):
        src, dst = powerlaw_graph(40, 150, seed=16)
        edges = edges_from_arrays(psg.spark, src, dst)
        result = CommonNeighbor(batch_size=32).transform(psg, edges)
        got = {(r["src"], r["dst"]): r["common"]
               for r in result.output.collect()}
        for s, d, c in common_neighbor_reference(src, dst):
            assert got[(s, d)] == c

    def test_pulls_from_ps(self, psg):
        src, dst = powerlaw_graph(30, 80, seed=17)
        edges = edges_from_arrays(psg.spark, src, dst)
        result = CommonNeighbor().transform(psg, edges)
        before = psg.metrics.get(PS_PULL_BYTES)
        result.output.count()
        assert psg.metrics.get(PS_PULL_BYTES) > before


class TestTriangleCount:
    def test_matches_networkx(self, psg):
        src, dst = powerlaw_graph(40, 200, seed=18)
        edges = edges_from_arrays(psg.spark, src, dst)
        result = TriangleCount(batch_size=16).transform(psg, edges)
        nxg = nx.Graph()
        nxg.add_edges_from(zip(src.tolist(), dst.tolist()))
        nxg.remove_edges_from(nx.selfloop_edges(nxg))
        expect = sum(nx.triangles(nxg).values()) // 3
        assert result.stats["triangles"] == expect

    def test_triangle_free_graph(self, psg):
        src = np.array([0, 1, 2, 3])
        dst = np.array([1, 2, 3, 4])
        edges = edges_from_arrays(psg.spark, src, dst)
        result = TriangleCount().transform(psg, edges)
        assert result.stats["triangles"] == 0


class TestFastUnfolding:
    def test_finds_planted_communities(self, psg):
        src, dst, truth = community_graph(
            120, 4, avg_degree=12, mixing=0.05, seed=19
        )
        edges = edges_from_arrays(psg.spark, src, dst)
        result = FastUnfolding(num_passes=3).transform(psg, edges)
        assert result.stats["modularity"] > 0.5
        got = {r["vertex"]: r["community"]
               for r in result.output.collect()}
        # Most pairs in the same true community share a detected one.
        members = {}
        for v, c in got.items():
            members.setdefault(truth[v], []).append(c)
        agree = 0
        total = 0
        for vals in members.values():
            vals = np.asarray(vals)
            _ids, counts = np.unique(vals, return_counts=True)
            agree += counts.max()
            total += len(vals)
        assert agree / total > 0.7

    def test_modularity_at_least_competitive_with_networkx(self, psg):
        src, dst, _ = community_graph(
            80, 3, avg_degree=10, mixing=0.1, seed=20
        )
        edges = edges_from_arrays(psg.spark, src, dst)
        result = FastUnfolding(num_passes=3).transform(psg, edges)
        nxg = nx.Graph()
        nxg.add_edges_from(zip(src.tolist(), dst.tolist()))
        comms = nx.community.louvain_communities(nxg, seed=1)
        q_nx = nx.community.modularity(nxg, comms)
        # Allow some slack: ours is the distributed/stale variant.
        assert result.stats["modularity"] > q_nx - 0.12

    def test_weighted_input(self, psg):
        src = np.array([0, 1, 2, 3, 0])
        dst = np.array([1, 2, 0, 4, 3])
        w = np.array([5.0, 5.0, 5.0, 5.0, 0.1])
        edges = edges_from_arrays(psg.spark, src, dst, weight=w)
        result = FastUnfolding().transform(psg, edges)
        got = {r["vertex"]: r["community"]
               for r in result.output.collect()}
        assert got[0] == got[1] == got[2]
        assert got[3] == got[4]


class TestLabelPropagation:
    def test_detects_two_cliques(self, psg):
        # Two 5-cliques joined by one edge.
        edges_list = []
        for base in (0, 5):
            for i in range(5):
                for j in range(i + 1, 5):
                    edges_list.append((base + i, base + j))
        edges_list.append((4, 5))
        src = np.array([e[0] for e in edges_list])
        dst = np.array([e[1] for e in edges_list])
        edges = edges_from_arrays(psg.spark, src, dst)
        result = LabelPropagation(max_iterations=20).transform(psg, edges)
        got = {r["vertex"]: r["label"] for r in result.output.collect()}
        assert len({got[v] for v in range(5)}) == 1
        assert len({got[v] for v in range(5, 10)}) == 1


class TestLine:
    def test_loss_decreases(self, psg):
        src, dst, _ = community_graph(
            60, 3, avg_degree=8, mixing=0.05, seed=21
        )
        edges = edges_from_arrays(psg.spark, src, dst)
        result = Line(dim=8, epochs=4, lr=0.1, negative=3).transform(
            psg, edges
        )
        losses = result.stats["epoch_losses"]
        assert losses[-1] < losses[0]

    def test_embeddings_capture_structure(self, psg):
        src, dst, _ = community_graph(
            60, 3, avg_degree=10, mixing=0.03, seed=22
        )
        edges = edges_from_arrays(psg.spark, src, dst)
        result = Line(dim=16, epochs=6, lr=0.15, negative=5,
                      order=1).transform(psg, edges)
        emb = result.stats["embedding"]
        n = 60
        vecs = emb.pull_rows(np.arange(n))
        score = link_prediction_score(vecs, src, dst, make_rng(1))
        assert score > 0.7

    def test_output_schema(self, psg):
        src, dst = powerlaw_graph(20, 60, seed=23)
        edges = edges_from_arrays(psg.spark, src, dst)
        result = Line(dim=4, epochs=1).transform(psg, edges)
        assert result.output.columns == ["vertex", "e0", "e1", "e2", "e3"]

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            Line(order=3)


class TestRunner:
    def test_end_to_end_pagerank_via_hdfs(self, psg):
        src, dst = powerlaw_graph(30, 90, seed=24)
        write_edges(psg.hdfs, "/in/pr", src, dst, num_files=3)
        runner = GraphRunner(psg)
        result = runner.run(
            PageRank(max_iterations=5), "/in/pr", "/out/pr"
        )
        assert result.iterations == 5
        saved = psg.spark.text_file("/out/pr").collect()
        assert len(saved) == len(result.output.collect())


class TestConnectedComponents:
    def test_matches_networkx(self, psg):
        from repro.core.algorithms import ConnectedComponents

        src, dst = powerlaw_graph(50, 120, seed=61)
        edges = edges_from_arrays(psg.spark, src, dst)
        result = ConnectedComponents().transform(psg, edges)
        got = {r["vertex"]: r["component"]
               for r in result.output.collect()}
        nxg = nx.Graph()
        nxg.add_edges_from(zip(src.tolist(), dst.tolist()))
        for comp in nx.connected_components(nxg):
            labels = {got[v] for v in comp}
            assert len(labels) == 1
            assert min(labels) == min(comp)

    def test_two_islands(self, psg):
        from repro.core.algorithms import ConnectedComponents

        src = np.array([0, 1, 10, 11])
        dst = np.array([1, 2, 11, 12])
        edges = edges_from_arrays(psg.spark, src, dst)
        result = ConnectedComponents().transform(psg, edges)
        assert result.stats["num_components"] == 2


class TestDeepWalk:
    def test_loss_decreases_and_structure_captured(self, psg):
        from repro.core.algorithms import DeepWalk

        src, dst, _ = community_graph(
            60, 3, avg_degree=10, mixing=0.03, seed=62
        )
        edges = edges_from_arrays(psg.spark, src, dst)
        result = DeepWalk(
            dim=16, walk_length=6, walks_per_vertex=3, window=2,
            epochs=4, lr=0.05,
        ).transform(psg, edges)
        losses = result.stats["epoch_losses"]
        assert losses[-1] < losses[0]
        emb = result.stats["embedding"]
        vecs = emb.pull_rows(np.arange(60))
        score = link_prediction_score(vecs, src, dst, make_rng(2))
        assert score > 0.65

    def test_walks_stay_on_graph(self, psg):
        from repro.core.algorithms.deepwalk import _sample_walks
        from repro.core.ops import (
            push_neighbor_tables,
            to_neighbor_tables,
        )

        src = np.array([0, 1, 2])
        dst = np.array([1, 2, 0])
        edges = edges_from_arrays(psg.spark, src, dst)
        adj = psg.ps.create_neighbor_table("walk-adj", 3)
        push_neighbor_tables(
            to_neighbor_tables(edges, symmetric=True, dedupe=True), adj
        )
        walks = _sample_walks(
            adj, np.array([0, 1, 2]), length=5, per_vertex=2,
            return_param=1.0, rng=np.random.default_rng(0),
        )
        assert walks.shape == (6, 5)
        # Every consecutive pair is an edge of the triangle.
        for row in walks:
            for a, b in zip(row[:-1], row[1:]):
                assert abs(int(a) - int(b)) in (1, 2)

    def test_skipgram_pairs_window(self):
        from repro.core.algorithms.deepwalk import _skipgram_pairs

        walks = np.array([[1, 2, 3]])
        c, t = _skipgram_pairs(walks, window=1)
        pairs = set(zip(c.tolist(), t.tolist()))
        assert pairs == {(1, 2), (2, 1), (2, 3), (3, 2)}


class TestGraphSageAggregators:
    def test_pool_aggregator_trains(self, psg):
        from repro.core.algorithms import GraphSage
        from repro.datasets.generators import vertex_features

        src, dst, comm = community_graph(
            150, 3, avg_degree=10, mixing=0.05, seed=63
        )
        feats, labels = vertex_features(comm, 8, 3, noise=0.8, seed=64)
        edges = edges_from_arrays(psg.spark, src, dst)
        result = GraphSage(
            feats, labels, hidden=16, epochs=3, batch_size=64, lr=0.05,
            aggregator="pool",
        ).transform(psg, edges)
        assert result.stats["accuracy"] > 0.6

    def test_unknown_aggregator_rejected(self):
        from repro.core.algorithms.graphsage import SageNet

        with pytest.raises(ValueError):
            SageNet(4, 4, 2, aggregator="gru")
