"""Tests for the command-line submission tool."""

import pytest

from repro.cli import ALGORITHMS, build_parser, main, make_algorithm
from repro.datasets.generators import community_graph, powerlaw_graph


@pytest.fixture
def edge_file(tmp_path):
    src, dst = powerlaw_graph(100, 500, seed=81)
    path = tmp_path / "edges.tsv"
    path.write_text(
        "\n".join(f"{s}\t{d}" for s, d in zip(src, dst)) + "\n"
    )
    return str(path)


class TestParser:
    def test_all_algorithms_constructible(self):
        parser = build_parser()
        for name in ALGORITHMS:
            args = parser.parse_args([name, "--input", "x"])
            assert make_algorithm(args) is not None

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sorting-hat", "--input", "x"])

    def test_input_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["pagerank"])


class TestMain:
    def test_pagerank_end_to_end(self, edge_file, tmp_path, capsys):
        out = tmp_path / "ranks.tsv"
        code = main([
            "pagerank", "--input", edge_file, "--output", str(out),
            "--iterations", "5", "--executors", "3", "--servers", "2",
        ])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "iterations: 5" in stdout
        lines = out.read_text().strip().split("\n")
        assert len(lines) > 50
        v, r = lines[0].split("\t")
        int(v)
        float(r)

    def test_kcore_summary(self, edge_file, capsys):
        code = main([
            "kcore", "--input", edge_file,
            "--executors", "3", "--servers", "2",
        ])
        assert code == 0
        assert "num_vertices" in capsys.readouterr().out

    def test_weighted_fast_unfolding(self, tmp_path, capsys):
        src, dst, _ = community_graph(80, 3, avg_degree=8, seed=82)
        path = tmp_path / "w.tsv"
        path.write_text(
            "\n".join(f"{s}\t{d}\t1.0" for s, d in zip(src, dst)) + "\n"
        )
        code = main([
            "fast-unfolding", "--input", str(path), "--weighted",
            "--executors", "3", "--servers", "2",
        ])
        assert code == 0
        assert "modularity" in capsys.readouterr().out
