"""Deeper tests of the shuffle service, scheduler and cost accounting."""

import numpy as np
import pytest

from repro.common.config import ClusterConfig
from repro.common.costs import CostModel
from repro.common.errors import StageFailedError
from repro.common.metrics import (
    SHUFFLE_BYTES_READ,
    SHUFFLE_BYTES_WRITTEN,
    TASKS_FAILED,
)
from repro.common.simclock import TaskCost
from repro.dataflow.context import SparkContext
from repro.dataflow.shuffle import ShuffleOutputLostError, ShuffleService
from tests.conftest import make_context


class TestShuffleService:
    def _service_and_executors(self, n=2, mem=1 << 30):
        ctx = make_context(num_executors=n, executor_mem=mem)
        return ctx, ctx.shuffle_service

    def test_write_read_roundtrip(self):
        ctx, svc = self._service_and_executors()
        try:
            sid = ctx.next_shuffle_id()
            cost = TaskCost()
            svc.write(sid, 0, ctx.executors[0],
                      {0: [("a", 1)], 1: [("b", 2)]}, cost)
            svc.write(sid, 1, ctx.executors[1], {0: [("c", 3)]}, cost)
            got = svc.read(sid, 0, 2, ctx.executors[0], TaskCost(),
                           ctx.live_executor_map())
            assert sorted(got) == [("a", 1), ("c", 3)]
        finally:
            ctx.stop()

    def test_read_missing_output_raises(self):
        ctx, svc = self._service_and_executors()
        try:
            sid = ctx.next_shuffle_id()
            svc.write(sid, 0, ctx.executors[0], {0: [(1, 1)]}, TaskCost())
            with pytest.raises(ShuffleOutputLostError):
                svc.read(sid, 0, 2, ctx.executors[0], TaskCost(),
                         ctx.live_executor_map())
        finally:
            ctx.stop()

    def test_dead_owner_invalidates(self):
        ctx, svc = self._service_and_executors()
        try:
            sid = ctx.next_shuffle_id()
            svc.write(sid, 0, ctx.executors[1], {0: [(1, 1)]}, TaskCost())
            live = ctx.live_executor_map()
            assert svc.has_output(sid, 0, live)
            live[ctx.executors[1].id] = False
            assert not svc.has_output(sid, 0, live)
            with pytest.raises(ShuffleOutputLostError):
                svc.read(sid, 0, 1, ctx.executors[0], TaskCost(), live)
        finally:
            ctx.stop()

    def test_invalidate_executor_drops_outputs(self):
        ctx, svc = self._service_and_executors()
        try:
            sid = ctx.next_shuffle_id()
            svc.write(sid, 0, ctx.executors[0], {0: [(1, 1)]}, TaskCost())
            svc.write(sid, 1, ctx.executors[1], {0: [(2, 2)]}, TaskCost())
            assert svc.invalidate_executor(ctx.executors[0].id) == 1
            assert not svc.output_exists(sid, 0)
            assert svc.output_exists(sid, 1)
        finally:
            ctx.stop()

    def test_remote_fraction_charges_network(self):
        ctx, svc = self._service_and_executors()
        try:
            sid = ctx.next_shuffle_id()
            payload = {0: [(i, i) for i in range(100)]}
            svc.write(sid, 0, ctx.executors[1], dict(payload), TaskCost())
            local = TaskCost()
            svc.read(sid, 0, 1, ctx.executors[1], local,
                     ctx.live_executor_map())
            remote = TaskCost()
            svc.read(sid, 0, 1, ctx.executors[0], remote,
                     ctx.live_executor_map())
            assert remote.net_s > local.net_s
            assert remote.disk_s == pytest.approx(local.disk_s)
        finally:
            ctx.stop()

    def test_spill_bounds_buffer(self):
        cm = CostModel()
        ctx = make_context(num_executors=1, executor_mem=10_000)
        try:
            svc = ShuffleService(cm)
            big = {0: [np.zeros(5000)]}  # 40KB logical > capacity
            svc.write(ctx.next_shuffle_id(), 0, ctx.executors[0], big,
                      TaskCost())  # must not OOM: buffer capped at 50%
        finally:
            ctx.stop()

    def test_metrics_track_bytes(self, sc):
        sc.parallelize([(i % 3, i) for i in range(100)]).group_by_key() \
            .count()
        assert sc.metrics.get(SHUFFLE_BYTES_WRITTEN) > 0
        assert sc.metrics.get(SHUFFLE_BYTES_READ) > 0


class TestSchedulerRecovery:
    def test_mid_stage_executor_death_retries(self):
        ctx = make_context(num_executors=3)
        try:
            state = {"killed": False}

            def hook(_s, _p, kind):
                if kind == "result" and not state["killed"]:
                    state["killed"] = True
                    ctx.kill_executor(1)

            ctx.add_task_hook(hook)
            got = sorted(ctx.parallelize(range(30), 6).map(
                lambda x: x * 2).collect())
            assert got == [x * 2 for x in range(30)]
            assert ctx.metrics.get(TASKS_FAILED) >= 0
        finally:
            ctx.stop()

    def test_shuffle_lost_recomputed_between_actions(self):
        ctx = make_context(num_executors=3)
        try:
            rdd = ctx.parallelize([(i % 5, 1) for i in range(50)], 6) \
                .reduce_by_key(lambda a, b: a + b)
            first = dict(rdd.collect())
            # Kill every executor's shuffle files.
            for i in range(3):
                ctx.kill_executor(i)
            second = dict(rdd.collect())
            assert first == second == {k: 10 for k in range(5)}
        finally:
            ctx.stop()

    def test_all_executors_dead_no_auto_restart(self):
        cluster = ClusterConfig(num_executors=2,
                                executor_mem_bytes=1 << 30)
        ctx = SparkContext(cluster, auto_restart_executors=False)
        try:
            ctx.kill_executor(0)
            ctx.kill_executor(1)
            with pytest.raises(RuntimeError):
                ctx.parallelize([1, 2]).collect()
        finally:
            ctx.stop()

    def test_failover_without_auto_restart(self):
        cluster = ClusterConfig(num_executors=3,
                                executor_mem_bytes=1 << 30)
        ctx = SparkContext(cluster, auto_restart_executors=False)
        try:
            ctx.kill_executor(0)
            got = sorted(ctx.parallelize(range(12), 6).collect())
            assert got == list(range(12))
            # Dead executor was routed around, not restarted.
            assert ctx.executors[0].container.restarts == 0
        finally:
            ctx.stop()

    def test_run_stage_custom_tasks(self, sc):
        results = sc.scheduler.run_stage(
            5, lambda p, tctx: p * p, kind="custom-test"
        )
        assert results == [0, 1, 4, 9, 16]

    def test_failover_spreads_across_survivors(self):
        # The dead executor's partitions must not all stack onto one
        # neighbor (skew): failover re-mixes over the live executors.
        cluster = ClusterConfig(num_executors=4,
                                executor_mem_bytes=1 << 30)
        ctx = SparkContext(cluster, auto_restart_executors=False)
        try:
            victim = 1
            orphans = [
                p for p in range(200)
                if ((p * 2654435761 + 0x9E3779B9) & 0xFFFFFFFF) % 4
                == victim
            ]
            assert len(orphans) > 10
            ctx.kill_executor(victim)
            landed = {ctx.executor_for_partition(p).index
                      for p in orphans}
            assert victim not in landed
            assert len(landed) > 1
        finally:
            ctx.stop()

    def test_failed_restart_falls_back_to_failover(self):
        # If the resource manager cannot actually revive the container,
        # placement must verify liveness and route around it instead of
        # handing work to a dead executor.
        ctx = make_context(num_executors=3)
        try:
            victim_p = next(
                p for p in range(100)
                if ((p * 2654435761 + 0x9E3779B9) & 0xFFFFFFFF) % 3 == 1
            )
            ctx.kill_executor(1)
            ctx.resource_manager.restart = lambda container: None
            chosen = ctx.executor_for_partition(victim_p)
            assert chosen.alive
            assert chosen.index != 1
        finally:
            ctx.stop()

    def test_remove_task_hook_idempotent(self, sc):
        def hook(_s, _p, _k):
            pass

        sc.add_task_hook(hook)
        sc.remove_task_hook(hook)
        sc.remove_task_hook(hook)  # double removal: no ValueError
        sc.remove_task_hook(lambda *_: None)  # never registered: no-op

    def test_retry_backoff_advances_driver_clock(self):
        times = {}
        for base in (0.0, 50.0):
            cluster = ClusterConfig(num_executors=2,
                                    executor_mem_bytes=1 << 30)
            ctx = SparkContext(cluster, retry_backoff_base_s=base)
            try:
                state = {"failed": False}

                def task(p, tctx, _state=state, _ctx=ctx):
                    if p == 0 and not _state["failed"]:
                        _state["failed"] = True
                        _ctx.kill_executor(tctx.executor.index)
                        tctx.executor.ensure_alive()
                    return p

                got = ctx.scheduler.run_stage(2, task, kind="flaky")
                assert got == [0, 1]
                times[base] = ctx.sim_time()
            finally:
                ctx.stop()
        # One failed attempt: backoff waits base * 2**0 on the driver.
        assert times[50.0] >= times[0.0] + 50.0

    def test_speculation_reroutes_straggler_tasks(self):
        from repro.common.metrics import TASKS_SPECULATED

        cluster = ClusterConfig(num_executors=3,
                                executor_mem_bytes=1 << 30)
        ctx = SparkContext(cluster, speculation=True)
        try:
            ctx.executors[1].slowdown = 10.0
            got = sorted(ctx.parallelize(range(30), 6).map(
                lambda x: x + 1).collect())
            assert got == [x + 1 for x in range(30)]
            assert ctx.metrics.get(TASKS_SPECULATED) > 0
        finally:
            ctx.stop()

    def test_straggler_slowdown_stretches_sim_time(self):
        times = {}
        for factor in (1.0, 40.0):
            ctx = make_context(num_executors=2)
            try:
                for ex in ctx.executors:
                    ex.slowdown = factor
                ctx.parallelize(range(4000), 8).map(
                    lambda x: x + 1).count()
                times[factor] = ctx.sim_time()
            finally:
                ctx.stop()
        assert times[40.0] > times[1.0] * 2

    def test_persistent_task_failure_raises_stage_failed(self):
        ctx = make_context(num_executors=2)
        try:
            def bad_task(p, tctx):
                ctx.kill_executor(tctx.executor.index)
                tctx.executor.ensure_alive()

            with pytest.raises(StageFailedError):
                ctx.scheduler.run_stage(1, bad_task, kind="doomed")
        finally:
            ctx.stop()


class TestKillDuringShuffle:
    """A map-side executor dying after its shuffle write must trigger
    parent-stage recomputation — on both record representations, and
    identically whether or not a worker pool is configured (task hooks
    force the pool to stand down, so chaos always runs serially)."""

    @staticmethod
    def _ctx(parallel):
        cluster = ClusterConfig(num_executors=3,
                                executor_mem_bytes=1 << 40)
        return SparkContext(cluster, parallel=parallel)

    def _run(self, ctx, batched):
        keys = [i % 5 for i in range(50)]
        values = [1.0] * 50
        if batched:
            rdd = ctx.parallelize_batches(
                np.array(keys, dtype=np.int64),
                np.array(values), 6,
            ).reduce_by_key(op="add", num_partitions=4)
            return dict(rdd.collect_records())
        rdd = ctx.parallelize(list(zip(keys, values)), 6) \
            .reduce_by_key(lambda a, b: a + b)
        return dict(rdd.collect())

    @pytest.mark.parametrize("parallel", [0, 4], ids=["serial", "pool4"])
    @pytest.mark.parametrize("batched", [False, True])
    def test_map_executor_killed_after_write(self, batched, parallel):
        ctx = self._ctx(parallel)
        try:
            state = {"killed": False}

            def hook(_stage, partition, kind):
                # Kill the executor that just wrote this map output; its
                # shuffle files die with it.
                if kind.startswith("shuffle-") and not state["killed"]:
                    state["killed"] = True
                    ctx.kill_executor(
                        ctx.executor_for_partition(partition).index
                    )

            ctx.add_task_hook(hook)
            got = self._run(ctx, batched)
            assert got == {k: 10.0 for k in range(5)}
            assert state["killed"]
            assert ctx.metrics.get(TASKS_FAILED) >= 1
        finally:
            ctx.stop()

    @pytest.mark.parametrize("batched", [False, True])
    def test_kill_run_identical_across_parallel_modes(self, batched):
        def chaos_run(parallel):
            ctx = self._ctx(parallel)
            try:
                state = {"killed": False}

                def hook(_stage, partition, kind):
                    if kind.startswith("shuffle-") and not state["killed"]:
                        state["killed"] = True
                        ctx.kill_executor(
                            ctx.executor_for_partition(partition).index
                        )

                ctx.add_task_hook(hook)
                got = self._run(ctx, batched)
                snap = {
                    k: v for k, v in ctx.metrics.snapshot().items()
                    if not k.startswith("dataflow.pool.")
                }
                return got, snap, ctx.sim_time()
            finally:
                ctx.stop()

        serial = chaos_run(0)
        pooled = chaos_run(4)
        assert serial == pooled

    @pytest.mark.parametrize("parallel", [0, 4], ids=["serial", "pool4"])
    @pytest.mark.parametrize("batched", [False, True])
    def test_clean_run_has_no_failures(self, batched, parallel):
        ctx = self._ctx(parallel)
        try:
            got = self._run(ctx, batched)
            assert got == {k: 10.0 for k in range(5)}
            assert ctx.metrics.get(TASKS_FAILED) == 0
            if parallel:
                # No hooks here, so the pool must actually engage.
                assert ctx.metrics.get(
                    "dataflow.pool.tasks.dispatched") > 0
        finally:
            ctx.stop()


class TestSimTimeAccounting:
    def test_parallel_work_faster_than_serial(self):
        # Same total records, 1 vs 8 executors: sim time shrinks.
        t = {}
        for n in (1, 8):
            ctx = make_context(num_executors=n)
            try:
                ctx.parallelize(range(20000), 8).map(
                    lambda x: x + 1).count()
                t[n] = ctx.sim_time()
            finally:
                ctx.stop()
        assert t[8] < t[1] / 3

    def test_cores_divide_task_time(self):
        t = {}
        for cores in (1, 4):
            cluster = ClusterConfig(
                num_executors=2, executor_mem_bytes=1 << 30,
                executor_cores=cores, default_parallelism=8,
            )
            ctx = SparkContext(cluster)
            try:
                ctx.parallelize(range(20000), 8).map(
                    lambda x: x + 1).count()
                t[cores] = ctx.sim_time()
            finally:
                ctx.stop()
        assert t[4] < t[1]

    def test_barrier_includes_driver(self, sc):
        sc.parallelize(range(100)).count()
        t = sc.sim_time()
        for ex in sc.executors:
            assert ex.container.clock.now_s <= t + 1e-12
