"""Tests for the synthetic dataset generators and Tencent stand-ins."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigError
from repro.common.metrics import MetricsRegistry
from repro.datasets.generators import (
    community_graph,
    edge_weights,
    graph_stats,
    powerlaw_graph,
    vertex_features,
)
from repro.datasets.tencent import (
    ds1_spec,
    ds2_spec,
    ds3_spec,
    generate_ds3_gnn,
    generate_edges,
    write_edges,
)
from repro.hdfs.filesystem import Hdfs


class TestPowerlaw:
    def test_shape_and_range(self):
        src, dst = powerlaw_graph(100, 500, seed=1)
        assert len(src) == len(dst) == 500
        assert src.min() >= 0 and src.max() < 100
        assert (src != dst).all()  # no self loops

    def test_deterministic_per_seed(self):
        a = powerlaw_graph(50, 200, seed=5)
        b = powerlaw_graph(50, 200, seed=5)
        assert (a[0] == b[0]).all() and (a[1] == b[1]).all()

    def test_different_seeds_differ(self):
        a = powerlaw_graph(50, 200, seed=5)
        b = powerlaw_graph(50, 200, seed=6)
        assert not ((a[0] == b[0]).all() and (a[1] == b[1]).all())

    def test_degree_distribution_is_skewed(self):
        src, dst = powerlaw_graph(2000, 30000, seed=2,
                                  max_degree_share=0.02)
        deg = np.bincount(np.concatenate([src, dst]))
        assert deg.max() > 5 * deg[deg > 0].mean()

    def test_default_cap_still_leaves_hubs(self):
        src, dst = powerlaw_graph(2000, 30000, seed=2)
        deg = np.bincount(np.concatenate([src, dst]))
        assert deg.max() > 3 * deg[deg > 0].mean()

    def test_max_degree_share_enforced(self):
        share = 0.002
        src, dst = powerlaw_graph(5000, 60000, seed=3,
                                  max_degree_share=share)
        deg = np.bincount(np.concatenate([src, dst]))
        # Statistical cap: max degree close to share * endpoints.
        assert deg.max() < share * 2 * len(src) * 1.5

    def test_invalid_args(self):
        with pytest.raises(ConfigError):
            powerlaw_graph(1, 10)
        with pytest.raises(ConfigError):
            powerlaw_graph(10, 0)
        with pytest.raises(ConfigError):
            powerlaw_graph(10, 10, max_degree_share=0)

    @settings(deadline=None, max_examples=15)
    @given(st.integers(2, 200), st.integers(1, 500))
    def test_always_valid_edges(self, n, m):
        src, dst = powerlaw_graph(n, m, seed=7)
        assert len(src) == m
        assert ((src >= 0) & (src < n)).all()
        assert ((dst >= 0) & (dst < n)).all()


class TestCommunityGraph:
    def test_returns_ground_truth(self):
        src, dst, comm = community_graph(200, 4, seed=1)
        assert len(comm) == 200
        assert set(np.unique(comm)) <= set(range(4))

    def test_mixing_zero_keeps_edges_internal(self):
        src, dst, comm = community_graph(200, 4, mixing=0.0, seed=2)
        assert (comm[src] == comm[dst]).all()

    def test_high_mixing_crosses_communities(self):
        src, dst, comm = community_graph(300, 3, mixing=1.0, seed=3)
        cross = (comm[src] != comm[dst]).mean()
        assert cross > 0.4

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            community_graph(10, 0)
        with pytest.raises(ConfigError):
            community_graph(10, 2, mixing=1.5)


class TestFeatures:
    def test_shapes_and_types(self):
        comm = np.array([0, 1, 2, 0, 1])
        feats, labels = vertex_features(comm, 8, 3, seed=1)
        assert feats.shape == (5, 8)
        assert feats.dtype == np.float32
        assert labels.tolist() == [0, 1, 2, 0, 1]

    def test_labels_wrap_by_classes(self):
        comm = np.array([0, 1, 2, 3])
        _f, labels = vertex_features(comm, 4, 2, seed=1)
        assert labels.tolist() == [0, 1, 0, 1]

    def test_low_noise_separable(self):
        comm = np.repeat(np.arange(3), 50)
        feats, labels = vertex_features(comm, 16, 3, noise=0.1, seed=2)
        # Nearest-centroid classification should be nearly perfect.
        centroids = np.stack([feats[labels == c].mean(axis=0)
                              for c in range(3)])
        d = ((feats[:, None, :] - centroids[None]) ** 2).sum(axis=2)
        assert (d.argmin(axis=1) == labels).mean() > 0.95

    def test_edge_weights_range(self):
        w = edge_weights(100, low=0.5, high=1.5, seed=1)
        assert len(w) == 100
        assert (w >= 0.5).all() and (w <= 1.5).all()


class TestSpecs:
    def test_edges_per_vertex_ratios(self):
        assert ds1_spec(1e-4).num_edges / ds1_spec(1e-4).num_vertices == \
            pytest.approx(13.75, rel=0.01)
        assert ds2_spec(1e-4).num_edges / ds2_spec(1e-4).num_vertices == \
            pytest.approx(70, rel=0.01)
        assert ds3_spec(1e-2).num_edges / ds3_spec(1e-2).num_vertices == \
            pytest.approx(100 / 30, rel=0.01)

    def test_minimum_sizes(self):
        tiny = ds1_spec(1e-12)
        assert tiny.num_vertices >= 64
        assert tiny.num_edges >= 256

    def test_generate_edges_matches_spec(self):
        spec = ds1_spec(2e-6)
        src, dst = generate_edges(spec, seed=1)
        assert len(src) == spec.num_edges
        assert max(src.max(), dst.max()) < spec.num_vertices

    def test_ds3_gnn_bundle(self):
        spec = ds3_spec(1e-4)
        src, dst, feats, labels = generate_ds3_gnn(spec, 8, 4, seed=1)
        assert feats.shape[0] == spec.num_vertices
        assert labels.max() < 4
        assert max(src.max(), dst.max()) < spec.num_vertices

    def test_graph_stats(self):
        src = np.array([0, 0, 1])
        dst = np.array([1, 2, 2])
        s = graph_stats(src, dst)
        assert s.num_vertices == 3
        assert s.num_edges == 3
        assert s.max_degree == 2


class TestWriteEdges:
    def test_files_and_lines(self):
        fs = Hdfs(metrics=MetricsRegistry())
        src = np.arange(10)
        dst = np.arange(10) + 1
        write_edges(fs, "/e", src, dst, num_files=3)
        files = fs.listdir("/e")
        assert len(files) == 3
        lines = [l for f in files for l in fs.read_lines(f)]
        assert len(lines) == 10
        assert lines[0].count("\t") == 1

    def test_weighted_format(self):
        fs = Hdfs(metrics=MetricsRegistry())
        write_edges(fs, "/w", np.array([1]), np.array([2]),
                    num_files=1, weights=np.array([0.25]))
        line = fs.read_lines("/w/part-00000")[0]
        assert line.split("\t") == ["1", "2", "0.250000"]
