"""Tests for repro.chaos: fault schedules, the engine, and recovery."""

import numpy as np
import pytest

from repro.chaos import (
    FAULT_KINDS,
    ChaosEngine,
    FaultSchedule,
    FaultSpec,
    InjectedRpcTimeout,
)
from repro.common.config import ClusterConfig
from repro.common.errors import ConfigError, RpcError
from repro.common.metrics import CHAOS_FAULTS
from repro.dataflow.context import SparkContext
from repro.ps.context import PSContext
from tests.conftest import make_context


def make_ps_cluster(num_executors=2, num_servers=3, **kwargs):
    cluster = ClusterConfig(
        num_executors=num_executors, executor_mem_bytes=1 << 40,
        num_servers=num_servers, server_mem_bytes=1 << 40,
    )
    spark = SparkContext(cluster)
    return spark, PSContext(spark, **kwargs)


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec("set_fire_to_rack")

    def test_kill_needs_a_trigger(self):
        with pytest.raises(ConfigError):
            FaultSpec("kill_executor", index=0)

    def test_kill_rejects_both_triggers(self):
        with pytest.raises(ConfigError):
            FaultSpec("kill_server", index=0, after_tasks=3, at_epoch=2)

    def test_slow_factor_below_one_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec("slow_executor", after_tasks=1, factor=0.5)

    def test_rpc_count_must_be_positive(self):
        with pytest.raises(ConfigError):
            FaultSpec("rpc_drop", count=0)

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec("rpc_timeout", delay_s=-1.0)

    def test_matches_rpc_globs(self):
        f = FaultSpec("rpc_drop", endpoint="ps-server-*", method="push")
        assert f.matches_rpc("ps-server-2", "push")
        assert not f.matches_rpc("ps-server-2", "pull")
        assert not f.matches_rpc("executor-1", "push")

    def test_to_dict_elides_defaults(self):
        d = FaultSpec("kill_executor", index=2, after_tasks=7).to_dict()
        assert d == {"kind": "kill_executor", "index": 2, "after_tasks": 7}


class TestFaultSchedule:
    def test_json_round_trip(self):
        sched = FaultSchedule([
            FaultSpec("kill_executor", index=1, after_tasks=5),
            FaultSpec("rpc_timeout", endpoint="ps-server-*",
                      method="push", delay_s=2.0, count=3),
            FaultSpec("slow_executor", index=0, at_epoch=2,
                      factor=4.0, duration_tasks=10),
        ], seed=42)
        back = FaultSchedule.from_json(sched.to_json())
        assert back.to_dict() == sched.to_dict()
        assert back.seed == 42
        assert len(back) == 3

    def test_save_and_load(self, tmp_path):
        path = str(tmp_path / "sched.json")
        sched = FaultSchedule([FaultSpec("kill_server", index=0,
                                         at_epoch=3)])
        sched.save(path)
        assert FaultSchedule.load(path).to_dict() == sched.to_dict()

    def test_dicts_coerced_to_specs(self):
        sched = FaultSchedule([{"kind": "kill_executor", "index": 1,
                                "after_tasks": 2}])
        assert isinstance(sched.faults[0], FaultSpec)

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ConfigError):
            FaultSchedule.from_json("not json {")
        with pytest.raises(ConfigError):
            FaultSchedule.from_json('{"no_faults": []}')
        with pytest.raises(ConfigError):
            FaultSchedule.from_json('{"faults": [{"bogus_field": 1}]}')

    def test_random_is_seed_deterministic(self):
        a = FaultSchedule.random(7, num_executors=4, num_servers=2)
        b = FaultSchedule.random(7, num_executors=4, num_servers=2)
        c = FaultSchedule.random(8, num_executors=4, num_servers=2)
        assert a.to_dict() == b.to_dict()
        assert c.to_dict() != a.to_dict()

    def test_random_without_servers_skips_server_kills(self):
        sched = FaultSchedule.random(3, num_faults=20, num_executors=4,
                                     num_servers=0)
        assert all(f.kind != "kill_server" for f in sched)
        assert all(f.kind in FAULT_KINDS for f in sched)


class TestChaosEngineSpark:
    def test_kill_server_requires_ps(self):
        ctx = make_context(num_executors=2)
        try:
            sched = FaultSchedule([FaultSpec("kill_server", index=0,
                                             after_tasks=1)])
            with pytest.raises(ConfigError):
                ChaosEngine(sched, ctx)
        finally:
            ctx.stop()

    def test_at_epoch_requires_ps(self):
        ctx = make_context(num_executors=2)
        try:
            sched = FaultSchedule([FaultSpec("kill_executor", index=0,
                                             at_epoch=1)])
            with pytest.raises(ConfigError):
                ChaosEngine(sched, ctx)
        finally:
            ctx.stop()

    def test_kill_executor_fires_and_job_recovers(self):
        ctx = make_context(num_executors=3)
        try:
            sched = FaultSchedule([FaultSpec("kill_executor", index=1,
                                             after_tasks=3)])
            with ChaosEngine(sched, ctx) as engine:
                got = sorted(ctx.parallelize(range(30), 6).map(
                    lambda x: x * 2).collect())
            assert got == [x * 2 for x in range(30)]
            assert [f.kind for f in engine.fired] == ["kill_executor"]
            assert engine.fired[0].tasks_seen >= 3
            assert engine.exhausted
            assert ctx.metrics.get(CHAOS_FAULTS) == 1
        finally:
            ctx.stop()

    def test_task_kind_filter_counts_only_matching_tasks(self):
        ctx = make_context(num_executors=3)
        try:
            sched = FaultSchedule([FaultSpec(
                "kill_executor", index=2, after_tasks=2,
                task_kind="result",
            )])
            with ChaosEngine(sched, ctx) as engine:
                # A shuffle stage runs map tasks first; only result tasks
                # may satisfy the trigger.
                ctx.parallelize([(i % 3, 1) for i in range(30)], 6) \
                    .reduce_by_key(lambda a, b: a + b).collect()
            assert len(engine.fired) == 1
        finally:
            ctx.stop()

    def test_slow_executor_stretches_sim_time(self):
        times = {}
        for label, faults in (("clean", []),
                              ("slow", [FaultSpec("slow_executor", index=0,
                                                  after_tasks=1,
                                                  factor=50.0)])):
            ctx = make_context(num_executors=2)
            try:
                with ChaosEngine(FaultSchedule(faults), ctx):
                    ctx.parallelize(range(4000), 8).map(
                        lambda x: x + 1).count()
                times[label] = ctx.sim_time()
            finally:
                ctx.stop()
        assert times["slow"] > times["clean"] * 2

    def test_slowdown_restored_after_duration(self):
        ctx = make_context(num_executors=2)
        try:
            sched = FaultSchedule([FaultSpec(
                "slow_executor", index=1, after_tasks=1, factor=8.0,
                duration_tasks=2,
            )])
            with ChaosEngine(sched, ctx):
                ctx.parallelize(range(40), 8).count()
                assert ctx.executors[1].slowdown == 1.0
        finally:
            ctx.stop()

    def test_detach_restores_slowdown_and_injector(self):
        ctx = make_context(num_executors=2)
        try:
            sched = FaultSchedule([
                FaultSpec("slow_executor", index=0, after_tasks=1,
                          factor=9.0),
                FaultSpec("rpc_drop", endpoint="nothing-matches"),
            ])
            engine = ChaosEngine(sched, ctx).attach()
            ctx.parallelize(range(8), 4).count()
            assert ctx.executors[0].slowdown == 9.0
            assert ctx.rpc.fault_injector is not None
            engine.detach()
            engine.detach()  # idempotent
            assert ctx.executors[0].slowdown == 1.0
            assert ctx.rpc.fault_injector is None
        finally:
            ctx.stop()

    def test_second_rpc_injector_rejected(self):
        ctx = make_context(num_executors=2)
        try:
            ctx.rpc.fault_injector = lambda *_: 0.0
            sched = FaultSchedule([FaultSpec("rpc_drop")])
            with pytest.raises(ConfigError):
                ChaosEngine(sched, ctx).attach()
        finally:
            ctx.rpc.fault_injector = None
            ctx.stop()

    def test_report_and_describe(self):
        ctx = make_context(num_executors=2)
        try:
            sched = FaultSchedule([FaultSpec("kill_executor", index=0,
                                             after_tasks=1)])
            with ChaosEngine(sched, ctx) as engine:
                ctx.parallelize(range(8), 4).count()
            report = engine.report()
            assert report["scheduled"] == 1
            assert report["fired"][0]["kind"] == "kill_executor"
            assert "kill_executor" in engine.describe()
        finally:
            ctx.stop()


class TestChaosEngineRpc:
    def test_rpc_drop_triggers_recovery_retry(self):
        spark, ps = make_ps_cluster()
        try:
            v = ps.create_vector("v", 40)
            sched = FaultSchedule([FaultSpec(
                "rpc_drop", endpoint="ps-server-*", method="push",
            )])
            with ChaosEngine(sched, spark, ps) as engine:
                v.push(np.arange(40), np.ones(40))
            # The injected drop was transparently retried (the agent asks
            # the master to recover, finds no dead server, and re-issues).
            np.testing.assert_allclose(v.to_numpy(), 1.0)
            assert [f.kind for f in engine.fired] == ["rpc_drop"]
        finally:
            ps.stop()
            spark.stop()

    def test_rpc_timeout_charges_driver_clock(self):
        spark, ps = make_ps_cluster()
        try:
            v = ps.create_vector("v", 40)
            sched = FaultSchedule([FaultSpec(
                "rpc_timeout", endpoint="ps-server-*", method="push",
                delay_s=3.0,
            )])
            t0 = spark.sim_time()
            with ChaosEngine(sched, spark, ps):
                v.push(np.arange(40), np.ones(40))
            assert spark.sim_time() >= t0 + 3.0
            np.testing.assert_allclose(v.to_numpy(), 1.0)
        finally:
            ps.stop()
            spark.stop()

    def test_rpc_drop_without_auto_recover_propagates(self):
        spark, ps = make_ps_cluster()
        try:
            ps.auto_recover = False
            v = ps.create_vector("v", 40)
            sched = FaultSchedule([FaultSpec(
                "rpc_drop", endpoint="ps-server-*", method="push",
            )])
            with ChaosEngine(sched, spark, ps):
                with pytest.raises(RpcError):
                    v.push(np.arange(40), np.ones(40))
        finally:
            ps.stop()
            spark.stop()

    def test_after_calls_and_count_window(self):
        spark, ps = make_ps_cluster(num_servers=1)
        try:
            ps.auto_recover = False
            # One partition -> one RPC call per push, so the call counter
            # maps 1:1 onto push() invocations.
            v = ps.create_vector("v", 10, num_partitions=1)
            sched = FaultSchedule([FaultSpec(
                "rpc_drop", endpoint="ps-server-*", method="push",
                after_calls=1, count=2,
            )])
            with ChaosEngine(sched, spark, ps) as engine:
                keys, ones = np.arange(10), np.ones(10)
                v.push(keys, ones)  # call 1: before the window
                for _ in range(2):  # calls 2-3: injected failures
                    with pytest.raises(RpcError):
                        v.push(keys, ones)
                v.push(keys, ones)  # call 4: window exhausted
                assert engine.exhausted
            np.testing.assert_allclose(v.to_numpy(), 2.0)
        finally:
            ps.stop()
            spark.stop()

    def test_injected_timeout_is_rpc_error(self):
        exc = InjectedRpcTimeout("t", delay_s=1.5)
        assert isinstance(exc, RpcError)
        assert exc.delay_s == 1.5


class TestChaosEndToEnd:
    def test_pagerank_survives_kills_with_correct_ranks(self):
        """A seeded executor kill + PS server kill mid-PageRank completes
        with the same final ranks as the clean run."""
        from repro.core.algorithms import PageRank
        from repro.core.context import PSGraphContext
        from repro.core.runner import GraphRunner
        from repro.datasets.generators import powerlaw_graph
        from repro.datasets.tencent import write_edges

        src, dst = powerlaw_graph(200, 1200, seed=11)
        cluster = ClusterConfig(
            num_executors=3, executor_mem_bytes=1 << 40,
            num_servers=2, server_mem_bytes=1 << 40,
        )
        ranks = {}
        for label in ("clean", "chaos"):
            with PSGraphContext(cluster, app_name=f"chaos-e2e-{label}",
                                checkpoint_interval=1) as ctx:
                write_edges(ctx.hdfs, "/input/edges", src, dst,
                            num_files=3)
                engine = None
                if label == "chaos":
                    sched = FaultSchedule([
                        FaultSpec("kill_executor", index=1,
                                  after_tasks=15),
                        FaultSpec("kill_server", index=0, at_epoch=3),
                    ], seed=5)
                    engine = ChaosEngine(sched, ctx.spark, ctx.ps).attach()
                try:
                    result = GraphRunner(ctx).run(
                        PageRank(max_iterations=6, tol=1e-9),
                        "/input/edges",
                    )
                finally:
                    if engine is not None:
                        engine.detach()
                ranks[label] = dict(result.output.rdd.collect())
                if label == "chaos":
                    assert len(engine.fired) == 2
                    assert ctx.ps.master.recoveries >= 1
        assert ranks["chaos"].keys() == ranks["clean"].keys()
        np.testing.assert_allclose(
            [ranks["chaos"][k] for k in sorted(ranks["clean"])],
            [ranks["clean"][k] for k in sorted(ranks["clean"])],
        )

    def test_recovery_cheaper_than_lineage_recompute(self):
        """Table II extension: PSGraph checkpoint-recovery sim-time is
        strictly below GraphX's full-lineage recompute."""
        from repro.experiments.table2 import run_recovery_comparison

        rows = run_recovery_comparison(scale=3e-6, iterations=6,
                                       fail_iteration=3)
        by_key = {(r.system, r.algorithm): r for r in rows}
        ps_cost = by_key[("PSGraph", "pagerank/recovery")] \
            .extra["recovery_sim_s"]
        gx_cost = by_key[("GraphX", "pagerank/recovery")] \
            .extra["recovery_sim_s"]
        assert 0.0 < ps_cost < gx_cost
        # Recovery must not change the answer, for either system.
        for system in ("PSGraph", "GraphX"):
            assert by_key[(system, "pagerank/recovery")] \
                .extra["ranks_checksum"] == pytest.approx(
                    by_key[(system, "pagerank/clean")]
                    .extra["ranks_checksum"])
