"""Unit + gradient-check tests for the torchlite autograd engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.torchlite import (
    AdamOptimizer,
    Linear,
    ReLU,
    ScriptModule,
    SGDOptimizer,
    Sequential,
    Tensor,
    accuracy,
    binary_cross_entropy_with_logits,
    concat,
    cross_entropy,
    dropout,
    log_softmax,
    normalize_rows,
    segment_max,
    segment_mean,
)


def numeric_grad(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar f wrt array x."""
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        old = x[idx]
        x[idx] = old + eps
        hi = f()
        x[idx] = old - eps
        lo = f()
        x[idx] = old
        g[idx] = (hi - lo) / (2 * eps)
        it.iternext()
    return g


def check_grad(build, x_data, rtol=1e-4, atol=1e-6):
    """Assert autograd gradient of sum(build(x)) matches numeric grad."""
    x = Tensor(x_data.copy(), requires_grad=True)
    out = build(x).sum()
    out.backward()

    holder = x.data

    def f():
        return build(Tensor(holder)).sum().item()

    num = numeric_grad(f, holder)
    np.testing.assert_allclose(x.grad, num, rtol=rtol, atol=atol)


class TestAutogradBasics:
    def test_add_mul_chain(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        ((a * b + a) * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, [8.0, 10.0])
        np.testing.assert_allclose(b.grad, [2.0, 4.0])

    def test_matmul_grad(self):
        rng = np.random.default_rng(0)
        W = rng.standard_normal((3, 2))
        check_grad(lambda x: x @ Tensor(W), rng.standard_normal((4, 3)))

    def test_same_tensor_used_twice(self):
        a = Tensor([2.0], requires_grad=True)
        (a * a).sum().backward()
        np.testing.assert_allclose(a.grad, [4.0])

    def test_broadcast_bias_grad(self):
        b = Tensor(np.zeros(3), requires_grad=True)
        x = Tensor(np.ones((5, 3)))
        (x + b).sum().backward()
        np.testing.assert_allclose(b.grad, [5.0, 5.0, 5.0])

    def test_getitem_scatter_grad(self):
        x = Tensor(np.arange(6.0).reshape(3, 2), requires_grad=True)
        idx = np.array([0, 0, 2])
        x[idx].sum().backward()
        np.testing.assert_allclose(x.grad, [[2, 2], [0, 0], [1, 1]])

    def test_backward_requires_scalar(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2).backward()

    def test_div_pow_grads(self):
        rng = np.random.default_rng(1)
        check_grad(lambda x: (x / 2.0) ** 3, rng.random((3, 3)) + 0.5)

    def test_mean_axis(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        x.mean(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 3), 1 / 3))

    def test_reshape_transpose(self):
        rng = np.random.default_rng(2)
        check_grad(lambda x: (x.T @ x).reshape(1, -1),
                   rng.standard_normal((4, 3)))

    @settings(deadline=None, max_examples=15)
    @given(st.integers(1, 4), st.integers(1, 4))
    def test_activations_match_numeric(self, n, m):
        rng = np.random.default_rng(n * 10 + m)
        x = rng.standard_normal((n, m)) * 0.9 + 0.1
        check_grad(lambda t: t.sigmoid(), x.copy())
        check_grad(lambda t: t.tanh(), x.copy())
        check_grad(lambda t: t.exp(), x.copy())


class TestFunctional:
    def test_concat_grad(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        out = concat([a, b], axis=1)
        assert out.shape == (2, 5)
        (out * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 2), 2.0))
        np.testing.assert_allclose(b.grad, np.full((2, 3), 2.0))

    def test_segment_mean_values(self):
        x = Tensor(np.array([[1.0], [3.0], [10.0]]))
        seg = np.array([0, 0, 1])
        out = segment_mean(x, seg, 3)
        np.testing.assert_allclose(out.data, [[2.0], [10.0], [0.0]])

    def test_segment_mean_grad(self):
        rng = np.random.default_rng(3)
        seg = np.array([0, 1, 0, 1, 1])
        check_grad(lambda t: segment_mean(t, seg, 2),
                   rng.standard_normal((5, 3)))

    def test_segment_max_values(self):
        x = Tensor(np.array([[1.0, 5.0], [3.0, 2.0], [-1.0, 0.0]]))
        out = segment_max(x, np.array([0, 0, 1]), 2)
        np.testing.assert_allclose(out.data, [[3.0, 5.0], [-1.0, 0.0]])

    def test_log_softmax_rows_sum_to_one(self):
        rng = np.random.default_rng(4)
        out = log_softmax(Tensor(rng.standard_normal((6, 4))))
        np.testing.assert_allclose(np.exp(out.data).sum(axis=1), 1.0)

    def test_cross_entropy_matches_manual(self):
        logits = Tensor(np.array([[2.0, 0.0], [0.0, 2.0]]),
                        requires_grad=True)
        labels = np.array([0, 1])
        loss = cross_entropy(logits, labels)
        expect = -np.log(np.exp(2) / (np.exp(2) + 1))
        assert loss.item() == pytest.approx(expect)

    def test_cross_entropy_grad(self):
        rng = np.random.default_rng(5)
        labels = np.array([0, 2, 1])
        check_grad(lambda t: cross_entropy(t, labels),
                   rng.standard_normal((3, 3)))

    def test_bce_logits_grad(self):
        rng = np.random.default_rng(6)
        targets = np.array([1.0, 0.0, 1.0])
        check_grad(
            lambda t: binary_cross_entropy_with_logits(t, targets),
            rng.standard_normal(3),
        )

    def test_dropout_eval_identity(self):
        rng = np.random.default_rng(7)
        x = Tensor(np.ones((4, 4)))
        out = dropout(x, 0.5, rng, training=False)
        np.testing.assert_allclose(out.data, 1.0)

    def test_dropout_scales_in_training(self):
        rng = np.random.default_rng(8)
        x = Tensor(np.ones((2000,)))
        out = dropout(x, 0.5, rng, training=True)
        assert out.data.mean() == pytest.approx(1.0, abs=0.1)
        assert set(np.unique(out.data)) == {0.0, 2.0}

    def test_normalize_rows(self):
        x = Tensor(np.array([[3.0, 4.0], [0.0, 0.0]]))
        out = normalize_rows(x)
        np.testing.assert_allclose(out.data[0], [0.6, 0.8])

    def test_accuracy(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
        assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)


class TestModules:
    def test_linear_shapes_and_params(self):
        layer = Linear(4, 3)
        out = layer(Tensor(np.ones((2, 4))))
        assert out.shape == (2, 3)
        assert len(layer.parameters()) == 2

    def test_sequential_named_parameters(self):
        model = Sequential(Linear(4, 8), ReLU(), Linear(8, 2))
        names = [n for n, _p in model.named_parameters()]
        assert "layer0.weight" in names
        assert "layer2.bias" in names

    def test_state_dict_roundtrip(self):
        m1 = Sequential(Linear(3, 3), ReLU(), Linear(3, 2))
        m2 = Sequential(Linear(3, 3), ReLU(), Linear(3, 2))
        m2.load_state_dict(m1.state_dict())
        x = Tensor(np.ones((2, 3)))
        np.testing.assert_allclose(m1(x).data, m2(x).data)

    def test_training_loop_reduces_loss(self):
        rng = np.random.default_rng(9)
        x = rng.standard_normal((64, 5))
        true_w = rng.standard_normal((5, 3))
        labels = (x @ true_w).argmax(axis=1)
        model = Sequential(Linear(5, 16, rng=rng), ReLU(),
                           Linear(16, 3, rng=rng))
        opt = AdamOptimizer(model.parameters(), lr=0.05)
        first = None
        for _ in range(60):
            opt.zero_grad()
            loss = cross_entropy(model(Tensor(x)), labels)
            if first is None:
                first = loss.item()
            loss.backward()
            opt.step()
        assert loss.item() < first * 0.3
        assert accuracy(model(Tensor(x)).data, labels) > 0.9

    def test_sgd_with_momentum_trains(self):
        rng = np.random.default_rng(10)
        x = rng.standard_normal((32, 4))
        y = x.sum(axis=1, keepdims=True)
        model = Linear(4, 1, rng=rng)
        opt = SGDOptimizer(model.parameters(), lr=0.05, momentum=0.9)
        for _ in range(100):
            opt.zero_grad()
            diff = model(Tensor(x)) - Tensor(y)
            loss = (diff * diff).mean()
            loss.backward()
            opt.step()
        assert loss.item() < 1e-3


class TestScriptModule:
    def test_trace_and_instantiate_identical(self):
        blob = ScriptModule.trace(_make_mlp, in_dim=4, out_dim=2)
        m1 = blob.instantiate()
        m2 = blob.instantiate()
        x = Tensor(np.ones((3, 4)))
        np.testing.assert_allclose(m1(x).data, m2(x).data)

    def test_bytes_roundtrip(self):
        blob = ScriptModule.trace(_make_mlp, in_dim=4, out_dim=2)
        back = ScriptModule.from_bytes(blob.to_bytes())
        x = Tensor(np.ones((2, 4)))
        np.testing.assert_allclose(
            back.instantiate()(x).data, blob.instantiate()(x).data
        )


def _make_mlp(in_dim: int, out_dim: int) -> Sequential:
    rng = np.random.default_rng(42)
    return Sequential(Linear(in_dim, 8, rng=rng), ReLU(),
                      Linear(8, out_dim, rng=rng))


class TestLSTMCell:
    def test_step_shapes(self):
        from repro.torchlite import LSTMCell

        cell = LSTMCell(4, 6, rng=np.random.default_rng(0))
        h = Tensor(np.zeros((3, 6)))
        c = Tensor(np.zeros((3, 6)))
        h2, c2 = cell(Tensor(np.ones((3, 4))), h, c)
        assert h2.shape == (3, 6)
        assert c2.shape == (3, 6)
        assert (np.abs(h2.data) < 1).all()  # tanh-bounded

    def test_gradients_reach_all_weights(self):
        from repro.torchlite import LSTMCell

        cell = LSTMCell(3, 4, rng=np.random.default_rng(1))
        x = Tensor(np.random.default_rng(2).standard_normal((10, 3)))
        out = cell.run_sequence(x, batch=2, steps=5)
        out.sum().backward()
        for _name, p in cell.named_parameters():
            assert p.grad is not None
            assert np.abs(p.grad).sum() > 0

    def test_sequence_order_matters(self):
        from repro.torchlite import LSTMCell

        cell = LSTMCell(2, 3, rng=np.random.default_rng(3))
        rng = np.random.default_rng(4)
        seq = rng.standard_normal((4, 2))
        fwd = cell.run_sequence(Tensor(seq), batch=1, steps=4)
        rev = cell.run_sequence(Tensor(seq[::-1].copy()), batch=1, steps=4)
        assert not np.allclose(fwd.data, rev.data)

    def test_trains_to_remember_last_input(self):
        from repro.torchlite import LSTMCell

        rng = np.random.default_rng(5)
        cell = LSTMCell(1, 8, rng=rng)
        head = Linear(8, 1, rng=rng)
        opt = AdamOptimizer(cell.parameters() + head.parameters(), lr=0.02)
        losses = []
        for step in range(80):
            seq = rng.standard_normal((20, 1))  # 4 sequences of length 5
            target = seq.reshape(4, 5)[:, -1:]  # last element
            opt.zero_grad()
            h = cell.run_sequence(Tensor(seq), batch=4, steps=5)
            pred = head(h)
            diff = pred - Tensor(target)
            loss = (diff * diff).mean()
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert np.mean(losses[-10:]) < np.mean(losses[:10]) * 0.5
