"""Last-mile coverage: GraphX Louvain modularity, CLI embeddings, misc."""

import networkx as nx
import numpy as np
import pytest

from repro.common.config import ClusterConfig
from repro.datasets.generators import community_graph
from repro.dataflow.context import SparkContext
from repro.graphx.fast_unfolding import _modularity, fast_unfolding


class TestGraphXModularity:
    def test_modularity_matches_networkx(self):
        src, dst, truth = community_graph(
            100, 4, avg_degree=10, mixing=0.1, seed=101
        )
        w = np.ones(len(src))
        q_ours = _modularity(src, dst, w, truth)
        nxg = nx.Graph()
        nxg.add_edges_from(zip(src.tolist(), dst.tolist()))
        comms = [set(np.flatnonzero(truth == c)) & set(nxg.nodes)
                 for c in range(4)]
        comms = [c for c in comms if c]
        q_nx = nx.community.modularity(nxg, comms)
        # Multi-edges make our weighted Q differ slightly from nx's
        # simple-graph Q; they must still agree closely.
        assert q_ours == pytest.approx(q_nx, abs=0.05)

    def test_singleton_partition_has_low_modularity(self):
        src = np.array([0, 1, 2])
        dst = np.array([1, 2, 0])
        q = _modularity(src, dst, np.ones(3), np.arange(3))
        assert q < 0.01

    def test_perfect_split_has_high_modularity(self):
        # Two disjoint triangles.
        src = np.array([0, 1, 2, 3, 4, 5])
        dst = np.array([1, 2, 0, 4, 5, 3])
        comms = np.array([0, 0, 0, 1, 1, 1])
        q = _modularity(src, dst, np.ones(6), comms)
        assert q == pytest.approx(0.5)

    def test_fast_unfolding_returns_total_mapping(self):
        ctx = SparkContext(ClusterConfig(
            num_executors=3, executor_mem_bytes=1 << 40))
        try:
            src, dst, _ = community_graph(
                60, 3, avg_degree=8, mixing=0.05, seed=102
            )
            comms, q, rounds = fast_unfolding(ctx, src, dst)
            n = int(max(src.max(), dst.max())) + 1
            assert len(comms) == n
            assert q > 0.3
        finally:
            ctx.stop()


class TestCliEmbeddings:
    @pytest.fixture
    def edge_file(self, tmp_path):
        src, dst, _ = community_graph(60, 3, avg_degree=8, seed=103)
        path = tmp_path / "e.tsv"
        path.write_text(
            "\n".join(f"{s}\t{d}" for s, d in zip(src, dst)) + "\n"
        )
        return str(path)

    def test_line_via_cli(self, edge_file, capsys):
        from repro.cli import main

        code = main([
            "line", "--input", edge_file, "--dim", "4", "--epochs", "1",
            "--executors", "2", "--servers", "2",
        ])
        assert code == 0
        assert "sim time" in capsys.readouterr().out

    def test_deepwalk_via_cli(self, edge_file, capsys):
        from repro.cli import main

        code = main([
            "deepwalk", "--input", edge_file, "--dim", "4",
            "--epochs", "1", "--executors", "2", "--servers", "2",
        ])
        assert code == 0

    def test_connected_components_via_cli(self, edge_file, capsys):
        from repro.cli import main

        code = main([
            "connected-components", "--input", edge_file,
            "--executors", "2", "--servers", "2",
        ])
        assert code == 0
        assert "num_components" in capsys.readouterr().out


class TestTensorEdges:
    def test_rsub_radd(self):
        from repro.torchlite import Tensor

        a = Tensor([2.0], requires_grad=True)
        out = (10.0 - a) + (1.0 + a)
        out.sum().backward()
        assert out.data[0] == pytest.approx(11.0)
        assert a.grad[0] == pytest.approx(0.0)

    def test_log_grad(self):
        from repro.torchlite import Tensor

        a = Tensor([4.0], requires_grad=True)
        a.log().sum().backward()
        assert a.grad[0] == pytest.approx(0.25)

    def test_detach_blocks_grad(self):
        from repro.torchlite import Tensor

        a = Tensor([3.0], requires_grad=True)
        (a.detach() * 2).sum()  # no tape
        assert a.grad is None

    def test_item_and_repr(self):
        from repro.torchlite import Tensor

        t = Tensor([[5.0]], requires_grad=True)
        assert t.item() == 5.0
        assert "grad=True" in repr(t)
