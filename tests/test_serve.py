"""Tests for the serving plane: workload generation, admission control,
hot-key caching, the serving loop, chaos-under-serving, and the CLI."""

import numpy as np
import pytest

from repro.chaos import ChaosEngine, FaultSchedule, FaultSpec
from repro.common.config import MB, ClusterConfig
from repro.common.errors import ConfigError
from repro.common.metrics import (
    PS_CACHE_EVICTIONS,
    SERVE_CACHE_EVICTIONS,
    SERVE_CACHE_HITS,
    SERVE_CACHE_MISSES,
    SERVE_LATENCY_H,
    SERVE_QUEUE_DEPTH_G,
    SERVE_REQUESTS,
    SERVE_SERVED,
    MetricsRegistry,
)
from repro.common.rng import derive_seed, make_rng
from repro.core.context import PSGraphContext
from repro.obs import TelemetryCollector, Tracer
from repro.obs.slo import default_slos
from repro.ps.cache import PullCache
from repro.serve import (
    AdmissionQueue,
    DropRecord,
    HotKeyCache,
    RequestGenerator,
    ServingPlane,
    TenantSpec,
    TokenBucket,
    WatermarkGate,
    default_serve_slos,
)
from repro.serve.workload import default_tenants, zipf_probabilities


def small_cluster() -> ClusterConfig:
    return ClusterConfig(
        num_executors=2, executor_mem_bytes=256 * MB,
        num_servers=2, server_mem_bytes=256 * MB,
    )


def make_request(seq=0, tenant="feeds", model="m", key=0, arrival=0.0,
                 deadline=5.0, priority=1):
    from repro.serve.workload import Request
    return Request(seq=seq, tenant=tenant, model=model, key=key,
                   arrival_s=arrival, deadline_s=arrival + deadline,
                   priority=priority)


# ----------------------------------------------------------------------
# workload generation
# ----------------------------------------------------------------------

class TestWorkload:
    def test_zipf_pmf_normalized_and_skewed(self):
        pmf = zipf_probabilities(100, 1.1)
        assert pmf.sum() == pytest.approx(1.0)
        assert np.all(np.diff(pmf) <= 0)  # hot keys are the low ids
        assert pmf[0] > 10 * pmf[50]

    def test_zipf_zero_exponent_is_uniform(self):
        pmf = zipf_probabilities(10, 0.0)
        assert np.allclose(pmf, 0.1)

    def test_generator_is_deterministic(self):
        tenants = default_tenants("m")
        a = RequestGenerator(tenants, key_space=50, seed=3).generate(500)
        b = RequestGenerator(tenants, key_space=50, seed=3).generate(500)
        assert [(r.seq, r.tenant, r.key, r.arrival_s) for r in a] \
            == [(r.seq, r.tenant, r.key, r.arrival_s) for r in b]
        c = RequestGenerator(tenants, key_space=50, seed=4).generate(500)
        assert [r.key for r in a] != [r.key for r in c]

    def test_streams_are_independent(self):
        tenants = default_tenants("m")
        a = RequestGenerator(tenants, key_space=50, zipf_s=0.5,
                             seed=3).generate(200)
        b = RequestGenerator(tenants, key_space=50, zipf_s=2.0,
                             seed=3).generate(200)
        # changing the key skew must not reshuffle arrivals or tenants
        assert [r.arrival_s for r in a] == [r.arrival_s for r in b]
        assert [r.tenant for r in a] == [r.tenant for r in b]

    def test_arrivals_sorted_and_deadlines_offset(self):
        tenants = default_tenants("m")
        by_name = {t.name: t for t in tenants}
        reqs = RequestGenerator(tenants, key_space=20, seed=1).generate(300)
        arrivals = [r.arrival_s for r in reqs]
        assert arrivals == sorted(arrivals)
        assert {r.tenant for r in reqs} == {"feeds", "batch-reco"}
        for r in reqs:
            spec = by_name[r.tenant]
            assert r.deadline_s == pytest.approx(
                r.arrival_s + spec.deadline_s)
            assert r.priority == spec.priority

    def test_validation(self):
        with pytest.raises(ConfigError):
            TenantSpec(name="x", model="m", weight=0.0)
        with pytest.raises(ConfigError):
            RequestGenerator([], key_space=10)
        with pytest.raises(ConfigError):
            RequestGenerator(
                [TenantSpec(name="a", model="m"),
                 TenantSpec(name="a", model="m")], key_space=10)
        with pytest.raises(ConfigError):
            zipf_probabilities(0, 1.0)


# ----------------------------------------------------------------------
# rate limiting & backpressure
# ----------------------------------------------------------------------

class TestLimiter:
    def test_token_bucket_refills_on_sim_time(self):
        bucket = TokenBucket(rate=10.0, burst=2)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)     # burst exhausted
        assert bucket.try_take(0.1)         # one token refilled
        assert not bucket.try_take(0.1)

    def test_token_bucket_burst_cap_and_unlimited(self):
        bucket = TokenBucket(rate=1.0, burst=2)
        bucket.try_take(0.0)
        # a long idle period must not accumulate beyond the burst
        assert bucket.try_take(100.0)
        assert bucket.try_take(100.0)
        assert not bucket.try_take(100.0)
        free = TokenBucket(rate=0.0, burst=1)
        assert all(free.try_take(0.0) for _ in range(100))

    def test_watermark_gate_hysteresis(self):
        gate = WatermarkGate(high=10, low=2, protect_priority=2)
        low_pri = make_request(priority=1)
        high_pri = make_request(priority=2)
        gate.update(9)
        assert gate.admits(low_pri)
        gate.update(10)
        assert gate.closed
        assert not gate.admits(low_pri)
        assert gate.admits(high_pri)        # protected class keeps flowing
        gate.update(5)                       # above low: still closed
        assert gate.closed
        gate.update(2)
        assert not gate.closed
        assert gate.transitions == 1

    def test_gate_validation(self):
        with pytest.raises(ConfigError):
            WatermarkGate(high=2, low=2)


# ----------------------------------------------------------------------
# admission queue
# ----------------------------------------------------------------------

class TestAdmissionQueue:
    def test_priority_then_deadline_order(self):
        q = AdmissionQueue(capacity=10)
        a = make_request(seq=0, priority=1, arrival=0.0, deadline=5.0)
        b = make_request(seq=1, priority=2, arrival=0.0, deadline=9.0)
        c = make_request(seq=2, priority=2, arrival=0.0, deadline=1.0)
        for r in (a, b, c):
            assert q.offer(r) is None
        batch, expired = q.drain(10, now_s=0.5)
        assert not expired
        assert [r.seq for r in batch] == [2, 1, 0]

    def test_full_queue_evicts_worst(self):
        q = AdmissionQueue(capacity=2)
        low = make_request(seq=0, priority=1)
        mid = make_request(seq=1, priority=2)
        q.offer(low)
        q.offer(mid)
        victim = q.offer(make_request(seq=2, priority=3))
        assert victim is low                # worst entry made way
        newcomer = make_request(seq=3, priority=1)
        assert q.offer(newcomer) is newcomer  # newcomer itself is worst
        assert q.depth == 2

    def test_drain_evicts_expired(self):
        q = AdmissionQueue(capacity=10)
        q.offer(make_request(seq=0, arrival=0.0, deadline=1.0))
        q.offer(make_request(seq=1, arrival=0.0, deadline=9.0))
        batch, expired = q.drain(10, now_s=2.0)
        assert [r.seq for r in batch] == [1]
        assert [r.seq for r in expired] == [0]
        assert q.depth == 0

    def test_expire_sweep(self):
        q = AdmissionQueue(capacity=10)
        q.offer(make_request(seq=0, arrival=0.0, deadline=1.0))
        q.offer(make_request(seq=1, arrival=0.0, deadline=3.0))
        assert [r.seq for r in q.expire(2.0)] == [0]
        assert q.depth == 1

    def test_drop_record_validates_reason(self):
        with pytest.raises(ConfigError):
            DropRecord(seq=0, tenant="t", reason="gremlins", sim_time_s=0.0)
        with pytest.raises(ConfigError):
            AdmissionQueue(capacity=0)


# ----------------------------------------------------------------------
# pull-cache capacity (satellite) & hot-key cache
# ----------------------------------------------------------------------

class TestPullCacheCapacity:
    def test_default_stays_unbounded(self):
        cache = PullCache(staleness=0)
        keys = np.arange(10_000)
        cache.store(keys, None, np.ones(10_000), epoch=0)
        assert len(cache) == 10_000
        assert cache.stats.evictions == 0

    def test_lru_eviction_order(self):
        cache = PullCache(staleness=0, capacity=2)
        cache.store(np.array([1]), None, np.array([1.0]), epoch=0)
        cache.store(np.array([2]), None, np.array([2.0]), epoch=0)
        # touching key 1 makes key 2 the LRU victim
        mask, _ = cache.lookup(np.array([1]), None, epoch=0)
        assert mask.all()
        cache.store(np.array([3]), None, np.array([3.0]), epoch=0)
        assert cache.stats.evictions == 1
        mask, _ = cache.lookup(np.array([2]), None, epoch=0)
        assert not mask.any()
        mask, _ = cache.lookup(np.array([1, 3]), None, epoch=0)
        assert mask.all()

    def test_eviction_counter_reaches_registry(self):
        metrics = MetricsRegistry()
        cache = PullCache(staleness=0, capacity=3, metrics=metrics)
        cache.store(np.arange(10), None, np.ones(10), epoch=0)
        assert len(cache) == 3
        assert cache.stats.evictions == 7
        assert metrics.get(PS_CACHE_EVICTIONS) == 7

    def test_capacity_validation(self):
        with pytest.raises(ConfigError):
            PullCache(capacity=0)

    def test_staleness_still_expires_with_capacity(self):
        cache = PullCache(staleness=1, capacity=8)
        cache.store(np.array([5]), None, np.array([1.0]), epoch=0)
        mask, _ = cache.lookup(np.array([5]), None, epoch=1)
        assert mask.all()
        mask, _ = cache.lookup(np.array([5]), None, epoch=2)
        assert not mask.any()

    def test_context_enable_with_capacity(self):
        with PSGraphContext(small_cluster()) as ctx:
            ctx.ps.create_vector("v", 100)
            cache = ctx.ps.enable_pull_cache("v", capacity=4)
            assert cache.capacity == 4
            handle = ctx.ps.matrix("v")
            handle.pull(np.arange(10))
            assert len(cache) == 4
            assert ctx.metrics.get(PS_CACHE_EVICTIONS) == 6


class TestHotKeyCache:
    def test_hits_misses_and_evictions_metered(self):
        metrics = MetricsRegistry()
        cache = HotKeyCache(2, metrics=metrics)
        mask, _ = cache.lookup(np.array([1, 2]))
        assert not mask.any()
        cache.store(np.array([1, 2]), np.array([1.0, 2.0]))
        mask, _ = cache.lookup(np.array([1, 2, 3]))
        assert mask.tolist() == [True, True, False]
        cache.store(np.array([3]), np.array([3.0]))
        assert metrics.get(SERVE_CACHE_HITS) == 2
        assert metrics.get(SERVE_CACHE_MISSES) == 3
        assert metrics.get(SERVE_CACHE_EVICTIONS) == 1
        assert cache.hit_rate == pytest.approx(2 / 5)
        cache.clear()
        assert len(cache) == 0


# ----------------------------------------------------------------------
# the serving plane
# ----------------------------------------------------------------------

def publish_vector(ctx, name, size, seed=11):
    vec = ctx.ps.create_vector(name, size)
    vec.set(np.arange(size),
            make_rng(derive_seed(seed, "publish")).random(size))
    ctx.ps.checkpoint_all()
    return vec


class TestServingPlane:
    def test_healthy_run_serves_everything(self):
        with PSGraphContext(small_cluster()) as ctx:
            publish_vector(ctx, "serve.ranks", 500)
            tenants = default_tenants("serve.ranks")
            plane = ServingPlane(ctx.ps, tenants, cache_capacity=100)
            reqs = RequestGenerator(
                tenants, key_space=500, seed=5).generate(5000)
            report = plane.run(reqs)
            assert report.offered == 5000
            assert report.served == 5000
            assert report.dropped == 0
            assert report.conserved()
            assert 0.0 < report.p50_s <= report.p99_s < 0.25
            assert report.degraded_p99_s is None
            assert report.cache_hit_rate > 0.5  # Zipf skew + 20% cache
            metrics = ctx.metrics
            assert metrics.get(SERVE_REQUESTS) == 5000
            assert metrics.get(SERVE_SERVED) == 5000
            assert metrics.histogram(SERVE_LATENCY_H).count == 5000
            assert metrics.gauge_snapshot()[SERVE_QUEUE_DEPTH_G][
                "value"] == 0.0

    def test_rate_limited_tenant_sheds_with_records(self):
        with PSGraphContext(small_cluster()) as ctx:
            publish_vector(ctx, "serve.ranks", 100)
            tenants = [TenantSpec(name="greedy", model="serve.ranks",
                                  rate_limit=100.0, burst=1)]
            plane = ServingPlane(ctx.ps, tenants)
            reqs = RequestGenerator(
                tenants, key_space=100, rate=1000.0, seed=5).generate(2000)
            report = plane.run(reqs)
            assert report.drops.get("rate_limited", 0) > 0
            assert report.conserved()
            limited = [r for r in report.drop_records
                       if r.reason == "rate_limited"]
            assert len(limited) == report.drops["rate_limited"]
            assert all(r.tenant == "greedy" for r in limited)

    def test_unknown_model_raises(self):
        with PSGraphContext(small_cluster()) as ctx:
            with pytest.raises(Exception):
                ServingPlane(ctx.ps, default_tenants("nope"))


class TestChaosUnderServing:
    """The satellite coverage: alert timing, conservation, determinism."""

    def run_chaos(self, seed=20200420):
        metrics = MetricsRegistry()
        tracer = Tracer()
        with PSGraphContext(small_cluster(), metrics=metrics,
                            tracer=tracer) as ctx:
            publish_vector(ctx, "serve.ranks", 400)
            collector = TelemetryCollector(
                metrics, tracer,
                slos=default_slos() + default_serve_slos(),
            ).attach(ctx.spark)
            tenants = default_tenants("serve.ranks")
            schedule = FaultSchedule([
                FaultSpec("kill_server", index=0, after_tasks=30,
                          task_kind="serve"),
            ], seed=seed)
            engine = ChaosEngine(schedule, ctx.spark, ctx.ps).attach()
            engine.bind_telemetry(collector)
            plane = ServingPlane(ctx.ps, tenants, cache_capacity=40)
            reqs = RequestGenerator(
                tenants, key_space=400, seed=seed).generate(8000)
            try:
                report = plane.run(reqs)
            finally:
                engine.detach()
                collector.finalize(ctx.sim_time())
                collector.detach()
            return report, engine, collector, ctx.sim_time()

    def test_slo_alert_fires_between_injection_and_recovery(self):
        report, engine, collector, end_s = self.run_chaos()
        assert len(engine.fired) == 1
        injected_at = engine.fired[0].sim_time_s
        serve_alerts = [a for a in collector.alerts
                        if a.slo == "serve-latency"]
        assert serve_alerts, "serve-latency SLO never fired under chaos"
        # the outage window for serving ends when the backlog drains
        assert injected_at <= serve_alerts[0].fired_at_s <= end_s
        assert report.degraded_p99_s is not None
        assert report.degraded_p99_s > 0.25   # way past the SLO threshold
        assert report.recoveries == 1

    def test_no_silent_drops_under_chaos(self):
        report, engine, _, _ = self.run_chaos()
        assert report.served < report.offered  # the outage cost something
        assert report.conserved()
        assert len(report.drop_records) == report.dropped
        seqs = [r.seq for r in report.drop_records]
        assert len(seqs) == len(set(seqs))     # each request dropped once
        from repro.serve.admission import DROP_REASONS
        assert all(r.reason in DROP_REASONS for r in report.drop_records)

    def test_strict_double_run_determinism(self):
        from repro.lint.dynamic import check_determinism
        report = check_determinism("serve-chaos", seed=99, strict=True)
        assert report.ok, report.describe()


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

class TestServeCli:
    def test_end_to_end_with_artifacts(self, tmp_path, capsys):
        from repro.serve.cli import main
        telemetry = tmp_path / "serve.json"
        dashboard = tmp_path / "serve.html"
        report_json = tmp_path / "report.json"
        rc = main([
            "--requests", "4000", "--vertices", "300", "--edges", "1200",
            "--iterations", "4", "--seed", "7", "--chaos",
            "--chaos-after", "30",
            "--telemetry", str(telemetry), "--dashboard", str(dashboard),
            "--report-json", str(report_json), "--require-alert", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "snapshot" in out and "hot cache" in out
        assert "serve-latency" in out
        import json
        doc = json.loads(telemetry.read_text())
        assert any(s["name"] == "serve-latency"
                   for s in doc["telemetry"]["slos"])
        report = json.loads(report_json.read_text())
        assert report["conserved"] is True
        assert report["degraded_p99_s"] > 0.25
        assert "serve.latency_s" in dashboard.read_text()

    def test_require_alert_fails_without_chaos(self, tmp_path, capsys):
        from repro.serve.cli import main
        rc = main([
            "--requests", "1000", "--vertices", "200", "--edges", "800",
            "--iterations", "3", "--require-alert", "1",
        ])
        assert rc == 1
        assert "required >= 1 alert" in capsys.readouterr().err
