"""Additional coverage: agent timing semantics, pregel, Euler passes,
memory tags, describe(), and property tests of core helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import ClusterConfig
from repro.common.costs import CostModel
from repro.common.memory import MemoryTracker
from repro.common.sizeof import sizeof
from repro.core.context import PSGraphContext
from repro.dataflow.context import SparkContext
from repro.datasets.generators import powerlaw_graph
from repro.datasets.tencent import write_edges
from repro.eulersim.euler import EulerSystem
from repro.graphx.graph import Graph
from repro.graphx.pregel import pregel
from repro.torchlite import Tensor, segment_max, segment_mean


def make_psg(num_executors=4, num_servers=2):
    cluster = ClusterConfig(
        num_executors=num_executors, executor_mem_bytes=1 << 40,
        num_servers=num_servers, server_mem_bytes=1 << 40,
    )
    return PSGraphContext(cluster)


class TestAgentTimingSemantics:
    def test_fanout_charges_busiest_server_not_sum(self):
        """The agent issues per-server requests concurrently: pulling the
        same bytes spread over 4 servers must be ~4x faster than from 1."""
        times = {}
        for servers in (1, 4):
            cluster = ClusterConfig(
                num_executors=1, executor_mem_bytes=1 << 40,
                num_servers=servers, server_mem_bytes=1 << 40,
            )
            ctx = PSGraphContext(cluster)
            try:
                v = ctx.ps.create_vector(
                    "v", 400_000, partition="hash",
                    num_partitions=servers,
                )
                t0 = ctx.sim_time()
                v.pull(np.arange(400_000))
                times[servers] = ctx.sim_time() - t0
            finally:
                ctx.stop()
        assert times[4] < times[1] * 0.6

    def test_congestion_scales_with_executor_server_ratio(self):
        """Each task pulls the same bytes; with 8x the executors hitting
        the same two servers, the shared links congest and every pull gets
        slower — the stage does NOT stay at the 2-executor latency."""
        times = {}
        for executors in (2, 16):
            cluster = ClusterConfig(
                num_executors=executors, executor_mem_bytes=1 << 40,
                num_servers=2, server_mem_bytes=1 << 40,
            )
            ctx = PSGraphContext(cluster)
            try:
                v = ctx.ps.create_vector("v", 200_000)
                keys = np.arange(200_000)

                def work(_it, v=v, keys=keys):
                    v.pull(keys)
                    return 0

                t0 = ctx.sim_time()
                ctx.spark.parallelize(
                    range(executors), executors
                ).foreach_partition(work)
                times[executors] = ctx.sim_time() - t0
            finally:
                ctx.stop()
        # Congestion factor goes 1 -> 8; transfer time should grow by
        # several x (latency and CPU dilute the exact 8).
        assert times[16] > times[2] * 3


class TestPregelCustom:
    def test_max_value_propagation(self):
        ctx = SparkContext(ClusterConfig(
            num_executors=3, executor_mem_bytes=1 << 40))
        try:
            # A path graph; everyone converges to the max id via pregel.
            src = np.arange(0, 9)
            dst = np.arange(1, 10)
            g = Graph.from_edges(ctx, src, dst, num_partitions=3)

            def send(es, ed, sa, da):
                return [(ed, sa), (es, da)]

            def vprog(ids, attrs, mids, mvals):
                new = attrs.copy()
                idx = np.searchsorted(ids, mids)
                new[idx] = np.maximum(new[idx], mvals)
                return new

            ids, attrs, iters = pregel(
                g, lambda ids: ids.astype(np.float64), send, vprog,
                "max", max_iterations=20, tol=0.5,
            )
            assert (attrs == 9).all()
            assert iters <= 11
        finally:
            ctx.stop()


class TestEulerPassBreakdown:
    def test_sequential_pass_proportions(self):
        sys = EulerSystem(ClusterConfig(
            num_executors=4, executor_mem_bytes=1 << 40))
        try:
            src, dst = powerlaw_graph(500, 4000, seed=91)
            write_edges(sys.hdfs, "/in/e", src, dst, num_files=4)
            feats = np.zeros((500, 8), dtype=np.float32)
            labels = np.zeros(500, dtype=np.int64)
            stats = sys.preprocess("/in/e", feats, labels)
            # The paper: ~4h mapping + ~4h JSON + minutes partitioning.
            assert stats["index_mapping_s"] > 10 * stats["partition_s"]
            assert stats["json_transform_s"] > 10 * stats["partition_s"]
            # Same order of magnitude for the two big passes.
            ratio = stats["index_mapping_s"] / stats["json_transform_s"]
            assert 0.2 < ratio < 5
        finally:
            sys.stop()


class TestDescribe:
    def test_layout_report(self):
        ctx = make_psg()
        try:
            ctx.ps.create_vector("ranks", 100)
            ctx.ps.create_neighbor_table("adj", 100)
            report = ctx.ps.describe()
            assert "ranks" in report
            assert "adj" in report
            assert "ps-server-0" in report
            assert "alive" in report
        finally:
            ctx.stop()


class TestMemoryTags:
    def test_usage_by_tag_tracks_partial_release(self):
        m = MemoryTracker("c", capacity=None)
        m.allocate(100, tag="a")
        m.allocate(50, tag="b")
        m.release(40, tag="a")
        tags = m.usage_by_tag()
        assert tags == {"a": 60, "b": 50}
        m.release(70, tag="a")  # over-release of the tag clamps it away
        assert "a" not in m.usage_by_tag()


class TestPropertyHelpers:
    @settings(deadline=None, max_examples=30)
    @given(st.lists(st.integers(0, 3), min_size=1, max_size=30),
           st.integers(1, 3))
    def test_segment_mean_matches_reference(self, segs, cols):
        segs = np.asarray(segs)
        num = int(segs.max()) + 1
        rng = np.random.default_rng(1)
        x = rng.standard_normal((len(segs), cols))
        got = segment_mean(Tensor(x), segs, num).data
        for s in range(num):
            rows = x[segs == s]
            expect = rows.mean(axis=0) if len(rows) else np.zeros(cols)
            np.testing.assert_allclose(got[s], expect, atol=1e-12)

    @settings(deadline=None, max_examples=30)
    @given(st.lists(st.integers(0, 3), min_size=1, max_size=30))
    def test_segment_max_matches_reference(self, segs):
        segs = np.asarray(segs)
        num = int(segs.max()) + 1
        rng = np.random.default_rng(2)
        x = rng.standard_normal((len(segs), 2))
        got = segment_max(Tensor(x), segs, num).data
        for s in range(num):
            rows = x[segs == s]
            if len(rows):
                np.testing.assert_allclose(got[s], rows.max(axis=0))

    @settings(deadline=None, max_examples=30)
    @given(st.recursive(
        st.one_of(st.integers(-10, 10), st.floats(-1, 1), st.text(max_size=5)),
        lambda inner: st.lists(inner, max_size=5),
        max_leaves=20,
    ))
    def test_sizeof_total_and_nonnegative(self, obj):
        assert sizeof(obj) >= 0

    @settings(deadline=None, max_examples=20)
    @given(st.floats(1e6, 1e10), st.floats(0, 1e-3))
    def test_network_time_monotone_in_bytes(self, bw, lat):
        cm = CostModel(network_bandwidth_bps=bw, rpc_latency_s=lat)
        assert cm.network_time(1000) <= cm.network_time(2000)


class TestMergeProperties:
    @settings(deadline=None, max_examples=30)
    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=40),
           st.integers(1, 5))
    def test_statcounter_merge_order_invariant(self, data, splits):
        from repro.dataflow.rdd import StatCounter

        whole = StatCounter()
        for x in data:
            whole.merge_value(x)
        merged = StatCounter()
        for i in range(splits):
            part = StatCounter()
            for x in data[i::splits]:
                part.merge_value(x)
            merged.merge_stats(part)
        assert merged.count == whole.count
        assert merged.mean == pytest.approx(whole.mean, abs=1e-9)
        assert merged.variance == pytest.approx(whole.variance, abs=1e-6)
        assert merged.min == whole.min
        assert merged.max == whole.max

    @settings(deadline=None, max_examples=25)
    @given(st.integers(2, 500), st.integers(1, 20))
    def test_ps_partitioners_total_cover(self, size, parts):
        from repro.ps.partitioner import make_ps_partitioner

        for kind in ("hash", "range", "hash-range"):
            p = make_ps_partitioner(kind, size, parts)
            seen = np.concatenate([
                p.keys_of_partition(i) for i in range(p.num_partitions)
            ])
            assert sorted(seen.tolist()) == list(range(size))

    @settings(deadline=None, max_examples=20)
    @given(st.integers(1, 64), st.integers(1, 64))
    def test_server_assignment_balanced(self, partitions, servers):
        """server_of spreads any run of consecutive pids evenly."""
        from repro.ps.meta import MatrixMeta
        from repro.ps.partitioner import RangePSPartitioner

        meta = MatrixMeta(
            name="m", rows=10, cols=1, dtype=np.dtype(np.float64),
            axis=0, storage="dense",
            partitioner=RangePSPartitioner(10, 1),
            num_servers=servers,
        )
        counts = np.bincount(
            [meta.server_of(p) for p in range(partitions)],
            minlength=servers,
        )
        # No server holds more than ceil(partitions / servers) + 0 extra.
        assert counts.max() <= -(-partitions // servers)

    @settings(deadline=None, max_examples=30)
    @given(st.lists(st.tuples(st.integers(0, 19), st.floats(-5, 5)),
                    max_size=30), st.integers(0, 4))
    def test_cached_pull_equals_uncached(self, updates, staleness):
        """The pull cache is transparent: cached reads == server reads."""
        from repro.common.config import ClusterConfig
        from repro.core.context import PSGraphContext

        cluster = ClusterConfig(
            num_executors=2, executor_mem_bytes=1 << 40,
            num_servers=2, server_mem_bytes=1 << 40,
        )
        ctx = PSGraphContext(cluster)
        try:
            v = ctx.ps.create_vector("v", 20, partition="hash")
            ctx.ps.enable_pull_cache("v", staleness=staleness)
            ref = np.zeros(20)
            keys = np.arange(20)
            for k, d in updates:
                v.push(np.array([k]), np.array([d]))
                ref[k] += d
                np.testing.assert_allclose(v.pull(keys), ref, atol=1e-12)
        finally:
            ctx.stop()
