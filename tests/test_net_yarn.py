"""Unit tests for the RPC fabric and the resource manager."""

import pytest

from repro.common.costs import CostModel
from repro.common.errors import (
    ContainerLostError,
    EndpointNotFoundError,
    ResourceError,
    RpcError,
)
from repro.common.metrics import CONTAINERS_RESTARTED, RPC_CALLS, MetricsRegistry
from repro.common.simclock import TaskCost
from repro.net.rpc import RpcEnv
from repro.yarn.resource_manager import ResourceManager


class Echo:
    def echo(self, x):
        return x

    def double(self, x):
        return [x, x]


class TestRpc:
    def test_call_returns_result(self):
        env = RpcEnv()
        env.register("s0", Echo())
        assert env.call("s0", "echo", 42) == 42

    def test_unknown_endpoint(self):
        env = RpcEnv()
        with pytest.raises(EndpointNotFoundError):
            env.call("ghost", "echo", 1)

    def test_unknown_method(self):
        env = RpcEnv()
        env.register("s0", Echo())
        with pytest.raises(RpcError):
            env.call("s0", "nope")

    def test_dead_endpoint_rejects(self):
        env = RpcEnv()
        env.register("s0", Echo())
        env.kill("s0")
        assert not env.is_alive("s0")
        with pytest.raises(RpcError):
            env.call("s0", "echo", 1)

    def test_revive_with_new_handler(self):
        env = RpcEnv()
        env.register("s0", Echo())
        env.kill("s0")
        env.revive("s0", Echo())
        assert env.call("s0", "echo", 5) == 5

    def test_cost_charged_with_latency_and_bytes(self):
        cm = CostModel(network_bandwidth_bps=1000.0, rpc_latency_s=0.5,
                       serialization_cpu_s_per_byte=0.0)
        env = RpcEnv(cost_model=cm)
        env.register("s0", Echo())
        cost = TaskCost()
        env.call("s0", "echo", 0, cost=cost,
                 request_bytes=500, response_bytes=500)
        assert cost.net_s == pytest.approx(0.5 + 1.0)

    def test_congestion_slows_transfer(self):
        cm = CostModel(network_bandwidth_bps=1000.0, rpc_latency_s=0.0,
                       serialization_cpu_s_per_byte=0.0)
        env = RpcEnv(cost_model=cm)
        env.register("s0", Echo())
        cost = TaskCost()
        env.call("s0", "echo", 0, cost=cost, request_bytes=1000,
                 response_bytes=0, concurrent_clients=10, num_servers=2)
        assert cost.net_s == pytest.approx(5.0)

    def test_metrics_incremented(self):
        m = MetricsRegistry()
        env = RpcEnv(metrics=m)
        env.register("s0", Echo())
        env.call("s0", "echo", 1)
        assert m.get(RPC_CALLS) == 1

    def test_response_bytes_callable(self):
        cm = CostModel(network_bandwidth_bps=1.0, rpc_latency_s=0.0,
                       serialization_cpu_s_per_byte=0.0)
        env = RpcEnv(cost_model=cm)
        env.register("s0", Echo())
        cost = TaskCost()
        env.call("s0", "double", 3, cost=cost, request_bytes=0,
                 response_bytes=lambda r: len(r))
        assert cost.net_s == pytest.approx(2.0)


class TestResourceManager:
    def test_request_grants_container(self):
        rm = ResourceManager()
        c = rm.request("executor", 1000, cores=2)
        assert c.alive
        assert c.memory.capacity == 1000
        assert c.cores == 2

    def test_request_many_names(self):
        rm = ResourceManager()
        cs = rm.request_many("executor", 3, 100)
        assert [c.id for c in cs] == ["executor-0", "executor-1", "executor-2"]

    def test_capacity_enforced(self):
        rm = ResourceManager(capacity_bytes=150)
        rm.request("x", 100)
        with pytest.raises(ResourceError):
            rm.request("x", 100)

    def test_duplicate_name_rejected(self):
        rm = ResourceManager()
        rm.request("x", 10, name="a")
        with pytest.raises(ResourceError):
            rm.request("x", 10, name="a")

    def test_kill_then_ensure_alive_raises(self):
        rm = ResourceManager()
        c = rm.request("executor", 100)
        c.memory.allocate(50)
        rm.kill(c)
        assert not c.alive
        assert c.memory.used == 0  # contents lost
        with pytest.raises(ContainerLostError):
            c.ensure_alive()

    def test_restart_advances_clock_past_cluster_max(self):
        m = MetricsRegistry()
        rm = ResourceManager(metrics=m, restart_delay_s=30)
        a = rm.request("x", 100)
        b = rm.request("x", 100)
        a.clock.advance(100)
        rm.kill(b)
        rm.restart(b)
        assert b.alive
        assert b.restarts == 1
        assert b.clock.now_s == pytest.approx(130)
        assert m.get(CONTAINERS_RESTARTED) == 1

    def test_release_returns_capacity(self):
        rm = ResourceManager(capacity_bytes=100)
        c = rm.request("x", 100)
        rm.release(c)
        rm.request("x", 100)  # fits again

    def test_containers_filter_by_kind(self):
        rm = ResourceManager()
        rm.request("executor", 10)
        rm.request("ps-server", 10)
        assert len(rm.containers("executor")) == 1
        assert len(rm.containers()) == 2
