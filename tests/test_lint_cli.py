"""CLI surface of ``python -m repro.lint`` / ``repro-lint``."""

import json

from repro.lint.cli import main


def test_list_rules_exits_zero(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("SIM001", "SIM002", "SIM003", "SIM004", "SIM005"):
        assert rule_id in out


def test_clean_tree_exits_zero(tmp_path, capsys):
    pkg = tmp_path / "repro" / "ps"
    pkg.mkdir(parents=True)
    (pkg / "clean.py").write_text("x = 1\n")
    assert main([str(tmp_path)]) == 0
    assert "repro-lint: clean" in capsys.readouterr().out


def test_violations_exit_one_and_json(tmp_path, capsys):
    pkg = tmp_path / "repro" / "ps"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text("import time\nt = time.time()\n")
    assert main([str(tmp_path), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 1
    assert payload["violations"][0]["rule"] == "SIM001"


def test_disable_silences_rule(tmp_path):
    pkg = tmp_path / "repro" / "ps"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text("import time\nt = time.time()\n")
    assert main([str(tmp_path), "--disable", "SIM001"]) == 0


def test_unknown_rule_is_usage_error(tmp_path):
    assert main([str(tmp_path), "--enable", "SIM999"]) == 2


def test_missing_path_is_usage_error():
    assert main(["definitely/not/here"]) == 2
