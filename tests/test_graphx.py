"""Tests for the GraphX baseline, validated against networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.common.errors import GraphLoadError, SimulatedOOMError
from repro.common.metrics import SHUFFLE_BYTES_WRITTEN
from repro.datasets.generators import powerlaw_graph
from repro.graphx.algorithms import (
    attach_neighbor_sets,
    common_neighbor,
    connected_components,
    kcore,
    pagerank,
    triangle_count,
)
from repro.graphx.graph import Graph
from tests.conftest import make_context


def small_edges():
    # Two triangles sharing vertex 2, plus a pendant.
    src = np.array([0, 1, 2, 2, 3, 4, 5])
    dst = np.array([1, 2, 0, 3, 4, 2, 0])
    return src, dst


@pytest.fixture
def sc4():
    ctx = make_context(num_executors=4)
    yield ctx
    ctx.stop()


class TestGraphBasics:
    def test_from_edges_counts(self, sc4):
        src, dst = small_edges()
        g = Graph.from_edges(sc4, src, dst, num_partitions=3)
        assert g.num_edges == 7
        assert g.num_vertices == 6

    def test_empty_edges_rejected(self, sc4):
        with pytest.raises(GraphLoadError):
            Graph.from_edges(sc4, np.array([]), np.array([]))

    def test_negative_id_rejected(self, sc4):
        with pytest.raises(GraphLoadError):
            Graph.from_edges(sc4, np.array([-1]), np.array([2]))

    def test_resident_memory_charged_and_released(self, sc4):
        src, dst = small_edges()
        g = Graph.from_edges(sc4, src, dst)
        used = sum(ex.container.memory.used for ex in sc4.executors)
        assert used > 0
        g.unpersist()
        assert sum(ex.container.memory.used for ex in sc4.executors) == 0

    def test_out_degrees_match_numpy(self, sc4):
        src, dst = small_edges()
        g = Graph.from_edges(sc4, src, dst, num_partitions=3)
        msgs = g.out_degrees()
        got = {}
        for ids, vals in msgs:
            got.update(zip(ids.tolist(), vals.tolist()))
        expect = dict(zip(*np.unique(src, return_counts=True)))
        assert got == {k: float(v) for k, v in expect.items()}

    def test_aggregate_messages_shuffles_bytes(self, sc4):
        src, dst = small_edges()
        g = Graph.from_edges(sc4, src, dst)
        before = sc4.metrics.get(SHUFFLE_BYTES_WRITTEN)
        g.out_degrees()
        assert sc4.metrics.get(SHUFFLE_BYTES_WRITTEN) > before


def _simple_no_dangling(num_vertices, num_edges, seed):
    """Deduplicated directed edges where every vertex has an out-edge."""
    src, dst = powerlaw_graph(num_vertices, num_edges, seed=seed)
    pairs = np.unique(np.stack([src, dst], axis=1), axis=0)
    src, dst = pairs[:, 0], pairs[:, 1]
    present = np.unique(np.concatenate([src, dst]))
    dangling = np.setdiff1d(present, np.unique(src))
    if len(dangling):
        src = np.concatenate([src, dangling])
        dst = np.concatenate(
            [dst, np.full(len(dangling), int(present[0]))]
        )
    return src, dst


class TestPageRank:
    def test_matches_networkx(self, sc4):
        src, dst = _simple_no_dangling(60, 300, seed=3)
        g = Graph.from_edges(sc4, src, dst, num_partitions=4)
        ids, ranks, _ = pagerank(g, max_iterations=80, tol=1e-12)
        nxg = nx.DiGraph()
        nxg.add_edges_from(zip(src.tolist(), dst.tolist()))
        expect = nx.pagerank(nxg, alpha=0.85, tol=1e-12, max_iter=500)
        # Our formulation is unnormalized: PR = 0.15 + 0.85*sum; networkx
        # normalizes to sum 1.  Compare after normalization.
        ours = ranks / ranks.sum()
        theirs = np.array([expect[v] for v in ids.tolist()])
        np.testing.assert_allclose(ours, theirs, atol=5e-4)

    def test_matches_reference_power_iteration(self, sc4):
        src, dst = powerlaw_graph(50, 250, seed=33)  # dups + dangling kept
        g = Graph.from_edges(sc4, src, dst, num_partitions=3)
        ids, ranks, iters = pagerank(g, max_iterations=12, tol=1e-15)
        n = int(max(src.max(), dst.max())) + 1
        outdeg = np.maximum(np.bincount(src, minlength=n), 1)
        ref = np.ones(n)
        for _ in range(iters):
            contrib = np.zeros(n)
            np.add.at(contrib, dst, ref[src] / outdeg[src])
            ref = 0.15 + 0.85 * contrib
        np.testing.assert_allclose(ranks, ref[ids], rtol=1e-9)

    def test_converges_early_with_tolerance(self, sc4):
        src, dst = powerlaw_graph(40, 150, seed=4)
        g = Graph.from_edges(sc4, src, dst)
        _ids, _ranks, iters = pagerank(g, max_iterations=100, tol=1e-3)
        assert iters < 100


class TestConnectedComponents:
    def test_two_components(self, sc4):
        src = np.array([0, 1, 5, 6])
        dst = np.array([1, 2, 6, 7])
        g = Graph.from_edges(sc4, src, dst, num_partitions=2)
        ids, comps, _ = connected_components(g)
        by_id = dict(zip(ids.tolist(), comps.tolist()))
        assert by_id[0] == by_id[1] == by_id[2] == 0
        assert by_id[5] == by_id[6] == by_id[7] == 5

    def test_matches_networkx(self, sc4):
        src, dst = powerlaw_graph(50, 120, seed=5)
        g = Graph.from_edges(sc4, src, dst)
        ids, comps, _ = connected_components(g)
        nxg = nx.Graph()
        nxg.add_edges_from(zip(src.tolist(), dst.tolist()))
        for comp in nx.connected_components(nxg):
            labels = {comps[np.searchsorted(ids, v)] for v in comp}
            assert len(labels) == 1


def _canonical_undirected(src, dst):
    lo, hi = np.minimum(src, dst), np.maximum(src, dst)
    keep = lo != hi
    pairs = np.unique(np.stack([lo[keep], hi[keep]], axis=1), axis=0)
    return pairs[:, 0], pairs[:, 1]


class TestKCore:
    def test_matches_networkx_core_number(self, sc4):
        raw_src, raw_dst = powerlaw_graph(40, 160, seed=6)
        src, dst = _canonical_undirected(raw_src, raw_dst)
        g = Graph.from_edges(sc4, src, dst)
        ids, cores, _ = kcore(g, max_iterations=60)
        nxg = nx.Graph()
        nxg.add_edges_from(zip(src.tolist(), dst.tolist()))
        expect = nx.core_number(nxg)
        got = dict(zip(ids.tolist(), cores.tolist()))
        # h-index iteration converges to the core number.
        assert got == {v: expect[v] for v in got}

    def test_kcore_ooms_with_tiny_executors(self):
        ctx = make_context(num_executors=4, executor_mem=120_000)
        try:
            src, dst = powerlaw_graph(200, 3000, seed=7)
            g = Graph.from_edges(ctx, src, dst)
            with pytest.raises(SimulatedOOMError):
                kcore(g, max_iterations=60)
        finally:
            ctx.stop()


class TestTriangles:
    def test_neighbor_sets_are_undirected(self, sc4):
        src, dst = small_edges()
        g = Graph.from_edges(sc4, src, dst, num_partitions=2)
        attach_neighbor_sets(g)
        ids, sets = g.collect_vertices()
        by_id = dict(zip(ids.tolist(), [s.tolist() for s in sets]))
        assert by_id[2] == [0, 1, 3, 4]

    def test_triangle_count_matches_networkx(self, sc4):
        src, dst = powerlaw_graph(40, 200, seed=8)
        g = Graph.from_edges(sc4, src, dst)
        got = triangle_count(g)
        nxg = nx.Graph()
        nxg.add_edges_from(zip(src.tolist(), dst.tolist()))
        nxg.remove_edges_from(nx.selfloop_edges(nxg))
        expect = sum(nx.triangles(nxg).values()) // 3
        assert got == expect

    def test_common_neighbor_matches_bruteforce(self, sc4):
        src, dst = small_edges()
        g = Graph.from_edges(sc4, src, dst, num_partitions=2)
        got = {(s, d): c for s, d, c in common_neighbor(g, num_chunks=2)}
        nxg = nx.Graph()
        nxg.add_edges_from(zip(src.tolist(), dst.tolist()))
        for (s, d), c in got.items():
            expect = len(set(nxg[s]) & set(nxg[d]))
            assert c == expect
        assert len(got) == 7


class TestFastUnfoldingGraphX:
    def test_finds_planted_communities(self, sc4):
        from repro.datasets.generators import community_graph
        from repro.graphx.fast_unfolding import fast_unfolding

        src, dst, truth = community_graph(
            100, 4, avg_degree=12, mixing=0.05, seed=44
        )
        comms, q, rounds = fast_unfolding(
            sc4, src, dst, num_passes=3, max_move_iterations=6
        )
        assert q > 0.5
        assert rounds > 0
        # Same-true-community pairs mostly agree.
        agree = 0
        total = 0
        for c in range(4):
            members = np.flatnonzero(truth == c)
            members = members[np.isin(members,
                                      np.concatenate([src, dst]))]
            if len(members) < 2:
                continue
            vals, counts = np.unique(comms[members], return_counts=True)
            agree += counts.max()
            total += len(members)
        assert agree / total > 0.7

    def test_weighted_two_blobs(self, sc4):
        from repro.graphx.fast_unfolding import fast_unfolding

        src = np.array([0, 1, 2, 3, 4, 5, 2])
        dst = np.array([1, 2, 0, 4, 5, 3, 3])
        w = np.array([5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 0.1])
        comms, q, _ = fast_unfolding(sc4, src, dst, w, num_passes=2)
        assert comms[0] == comms[1] == comms[2]
        assert comms[3] == comms[4] == comms[5]
        assert q > 0.3
