"""Tests for the Euler baseline simulation."""

import numpy as np
import pytest

from repro.common.config import ClusterConfig
from repro.core.algorithms.graphsage import make_sage
from repro.datasets.generators import community_graph, vertex_features
from repro.datasets.tencent import write_edges
from repro.eulersim.euler import EulerSystem, _build_adjacency
from repro.torchlite.script import ScriptModule


def euler_system(num_workers=4):
    cluster = ClusterConfig(
        num_executors=num_workers, executor_mem_bytes=1 << 40
    )
    return EulerSystem(cluster)


def small_task(n=120, classes=3, dim=8, seed=41):
    src, dst, comm = community_graph(
        n, classes, avg_degree=10, mixing=0.05, seed=seed
    )
    feats, labels = vertex_features(comm, dim, classes, noise=0.8,
                                    seed=seed + 1)
    return src, dst, feats, labels


class TestAdjacency:
    def test_build_adjacency_undirected_dedup(self):
        adj = _build_adjacency(np.array([0, 1, 0]), np.array([1, 0, 2]))
        assert adj[0].tolist() == [1, 2]
        assert adj[1].tolist() == [0]
        assert adj[2].tolist() == [0]


class TestPreprocess:
    def test_passes_are_sequential_and_timed(self):
        sys = euler_system()
        try:
            src, dst, feats, labels = small_task()
            write_edges(sys.hdfs, "/in/euler", src, dst, num_files=4)
            stats = sys.preprocess("/in/euler", feats, labels)
            assert stats["index_mapping_s"] > 0
            assert stats["json_transform_s"] > 0
            assert stats["total_s"] == pytest.approx(
                stats["index_mapping_s"] + stats["json_transform_s"]
                + stats["partition_s"]
            )
        finally:
            sys.stop()

    def test_training_requires_preprocess(self):
        sys = euler_system()
        try:
            blob = ScriptModule.trace(
                make_sage, in_dim=4, hidden=4, num_classes=2
            )
            with pytest.raises(RuntimeError):
                sys.train_graphsage(blob)
        finally:
            sys.stop()


class TestTraining:
    def test_trains_to_reasonable_accuracy(self):
        sys = euler_system()
        try:
            src, dst, feats, labels = small_task()
            write_edges(sys.hdfs, "/in/euler", src, dst, num_files=2)
            sys.preprocess("/in/euler", feats, labels)
            blob = ScriptModule.trace(
                make_sage, in_dim=feats.shape[1], hidden=16,
                num_classes=int(labels.max()) + 1, seed=3,
            )
            stats = sys.train_graphsage(
                blob, epochs=4, batch_size=64, lr=0.05
            )
            assert stats["epoch_losses"][-1] < stats["epoch_losses"][0]
            assert stats["accuracy"] > 0.6
            assert len(stats["epoch_sim_times"]) == 4
            assert all(t > 0 for t in stats["epoch_sim_times"])
        finally:
            sys.stop()
