"""Unit + property tests for the parameter server."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import ClusterConfig
from repro.common.errors import (
    CheckpointNotFoundError,
    ConfigError,
    MatrixNotFoundError,
    PSError,
    SimulatedOOMError,
)
from repro.dataflow.context import SparkContext
from repro.ps.context import PSContext
from repro.ps.optimizer import SGD, AdaGrad, Adam, Momentum
from repro.ps.partitioner import (
    HashPSPartitioner,
    HashRangePSPartitioner,
    RangePSPartitioner,
    make_ps_partitioner,
)
from repro.ps.psfunc import (
    AddColumn,
    CountNonZero,
    Fill,
    MaxAbs,
    RandomInit,
    Scale,
    VectorSum,
)


def make_ps(num_servers=3, server_mem=1 << 40, num_executors=2, **kwargs):
    cluster = ClusterConfig(
        num_executors=num_executors, executor_mem_bytes=1 << 40,
        num_servers=num_servers, server_mem_bytes=server_mem,
    )
    spark = SparkContext(cluster)
    return spark, PSContext(spark, **kwargs)


@pytest.fixture
def ps():
    spark, psctx = make_ps()
    yield psctx
    psctx.stop()
    spark.stop()


class TestPartitioners:
    @pytest.mark.parametrize("kind", ["hash", "range", "hash-range"])
    def test_partition_covers_all_keys(self, kind):
        p = make_ps_partitioner(kind, 100, 7)
        keys = np.arange(100)
        pids = p.partition_array(keys)
        assert ((0 <= pids) & (pids < p.num_partitions)).all()
        # keys_of_partition is the exact inverse image
        seen = np.concatenate(
            [p.keys_of_partition(i) for i in range(p.num_partitions)]
        )
        assert sorted(seen.tolist()) == list(range(100))

    @pytest.mark.parametrize("kind", ["hash", "range", "hash-range"])
    def test_scalar_matches_vector(self, kind):
        p = make_ps_partitioner(kind, 50, 4)
        keys = np.arange(50)
        pids = p.partition_array(keys)
        for k in range(50):
            assert p.partition_of(k) == pids[k]

    def test_range_is_contiguous(self):
        p = RangePSPartitioner(10, 3)
        assert p.partition_array(np.arange(10)).tolist() == \
            [0, 0, 0, 0, 1, 1, 1, 2, 2, 2]

    def test_hash_spreads_adjacent_keys(self):
        p = HashPSPartitioner(100, 4)
        assert p.partition_of(0) != p.partition_of(1)

    def test_hash_range_balances(self):
        p = HashRangePSPartitioner(1000, 4)
        counts = np.bincount(p.partition_array(np.arange(1000)),
                             minlength=4)
        assert counts.min() > 150

    def test_more_partitions_than_keys_clamped(self):
        p = make_ps_partitioner("range", 3, 10)
        assert p.num_partitions == 3

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            make_ps_partitioner("zigzag", 10, 2)


class TestVector:
    def test_pull_initial_value(self, ps):
        v = ps.create_vector("v", 100, init=0.0)
        got = v.pull(np.array([0, 50, 99]))
        assert got.tolist() == [0.0, 0.0, 0.0]

    def test_push_then_pull(self, ps):
        v = ps.create_vector("v", 100)
        v.push(np.array([3, 7]), np.array([1.5, 2.5]))
        v.push(np.array([3]), np.array([1.0]))
        assert v.pull(np.array([3, 7, 8])).tolist() == [2.5, 2.5, 0.0]

    def test_push_duplicates_accumulate(self, ps):
        v = ps.create_vector("v", 10)
        v.push(np.array([4, 4, 4]), np.array([1.0, 1.0, 1.0]))
        assert v.pull(np.array([4]))[0] == 3.0

    def test_set_overwrites(self, ps):
        v = ps.create_vector("v", 10)
        v.push(np.array([2]), np.array([5.0]))
        v.set(np.array([2]), np.array([1.0]))
        assert v.pull(np.array([2]))[0] == 1.0

    def test_pull_preserves_input_order_with_duplicates(self, ps):
        v = ps.create_vector("v", 10)
        v.set(np.arange(10), np.arange(10, dtype=float))
        got = v.pull(np.array([7, 1, 7, 3]))
        assert got.tolist() == [7.0, 1.0, 7.0, 3.0]

    def test_to_numpy_full(self, ps):
        v = ps.create_vector("v", 20)
        v.push(np.arange(20), np.arange(20, dtype=float))
        assert v.to_numpy().tolist() == list(range(20))

    @settings(deadline=None, max_examples=20)
    @given(st.lists(st.tuples(st.integers(0, 49),
                              st.floats(-10, 10)), max_size=40))
    def test_matches_numpy_reference(self, updates):
        spark, psctx = make_ps()
        try:
            v = psctx.create_vector("v", 50, partition="hash")
            ref = np.zeros(50)
            for k, d in updates:
                v.push(np.array([k]), np.array([d]))
                ref[k] += d
            np.testing.assert_allclose(v.to_numpy(), ref, rtol=1e-12)
        finally:
            psctx.stop()
            spark.stop()


class TestMatrix:
    def test_multi_column_pull(self, ps):
        m = ps.create_matrix("m", 10, 3)
        m.push(np.array([2]), np.array([[1.0, 2.0, 3.0]]))
        got = m.pull(np.array([2]))
        assert got.shape == (1, 3)
        assert got[0].tolist() == [1.0, 2.0, 3.0]

    def test_single_column_of_matrix(self, ps):
        m = ps.create_matrix("m", 10, 3)
        m.push(np.array([1]), np.array([[1.0, 2.0, 3.0]]))
        assert m.pull(np.array([1]), col=1)[0] == 2.0
        m.push(np.array([1]), np.array([5.0]), col=2)
        assert m.pull(np.array([1]), col=2)[0] == 8.0

    def test_duplicate_name_rejected(self, ps):
        ps.create_vector("dup", 5)
        with pytest.raises(ConfigError):
            ps.create_vector("dup", 5)

    def test_matrix_lookup_and_drop(self, ps):
        ps.create_vector("x", 5)
        assert ps.matrix("x") is not None
        ps.drop_matrix("x")
        with pytest.raises(MatrixNotFoundError):
            ps.matrix("x")

    def test_sparse_storage(self, ps):
        m = ps.create_matrix("s", 1000000, 2, storage="sparse",
                             partition="hash")
        m.push(np.array([999999]), np.array([[1.0, 2.0]]))
        assert m.pull(np.array([999999, 5]))[0].tolist() == [1.0, 2.0]

    def test_server_memory_charged(self, ps):
        before = sum(s.container.memory.used for s in ps.servers)
        ps.create_matrix("big", 1000, 4)
        after = sum(s.container.memory.used for s in ps.servers)
        assert after - before >= 1000 * 4 * 8

    def test_server_oom_on_oversized_model(self):
        spark, psctx = make_ps(num_servers=2, server_mem=4096)
        try:
            with pytest.raises(SimulatedOOMError):
                psctx.create_matrix("huge", 10000, 10)
        finally:
            psctx.stop()
            spark.stop()


class TestPsFunc:
    def test_vector_sum(self, ps):
        v = ps.create_vector("v", 30)
        v.push(np.arange(30), np.ones(30))
        assert v.psfunc(VectorSum()) == pytest.approx(30.0)

    def test_count_nonzero(self, ps):
        v = ps.create_vector("v", 30)
        v.push(np.array([1, 5, 9]), np.array([1.0, -2.0, 0.5]))
        assert v.psfunc(CountNonZero(tol=0.6)) == 2

    def test_max_abs(self, ps):
        v = ps.create_vector("v", 30)
        v.push(np.array([3]), np.array([-7.0]))
        assert v.psfunc(MaxAbs()) == pytest.approx(7.0)

    def test_scale_and_fill(self, ps):
        v = ps.create_vector("v", 10)
        v.push(np.arange(10), np.ones(10))
        v.psfunc(Scale(3.0, col=0))
        assert v.psfunc(VectorSum()) == pytest.approx(30.0)
        v.psfunc(Fill(0.0))
        assert v.psfunc(VectorSum()) == 0.0

    def test_add_column(self, ps):
        m = ps.create_matrix("m", 10, 2)
        m.push(np.arange(10), np.tile([1.0, 10.0], (10, 1)))
        m.psfunc(AddColumn(src=0, dst=1, scale=2.0))
        assert m.pull(np.array([0]))[0].tolist() == [1.0, 12.0]

    def test_random_init_deterministic_across_layouts(self):
        spark1, ps1 = make_ps(num_servers=2)
        spark2, ps2 = make_ps(num_servers=3)
        try:
            a = ps1.create_vector("e", 64, partition="range")
            b = ps2.create_vector("e", 64, partition="range")
            a.psfunc(RandomInit(seed=1, scale=0.5))
            b.psfunc(RandomInit(seed=1, scale=0.5))
            assert np.abs(a.to_numpy()).max() <= 0.5
        finally:
            ps1.stop()
            spark1.stop()
            ps2.stop()
            spark2.stop()


class TestEmbedding:
    def test_pull_rows_reassembles_column_shards(self, ps):
        e = ps.create_embedding("emb", rows=20, dim=8)
        vals = np.arange(20 * 8, dtype=np.float32).reshape(20, 8)
        e.set_rows(np.arange(20), vals)
        got = e.pull_rows(np.array([3, 11]))
        np.testing.assert_array_equal(got[0], vals[3])
        np.testing.assert_array_equal(got[1], vals[11])

    def test_push_rows_increments(self, ps):
        e = ps.create_embedding("emb", rows=5, dim=4)
        e.push_rows(np.array([2]), np.ones((1, 4), dtype=np.float32))
        e.push_rows(np.array([2]), np.ones((1, 4), dtype=np.float32))
        np.testing.assert_array_equal(
            e.pull_rows(np.array([2]))[0], np.full(4, 2.0, dtype=np.float32)
        )

    def test_server_side_dot_matches_local(self, ps):
        rng = np.random.default_rng(0)
        e = ps.create_embedding("emb", rows=16, dim=12)
        vals = rng.standard_normal((16, 12)).astype(np.float32)
        e.set_rows(np.arange(16), vals)
        left = np.array([0, 3, 7])
        right = np.array([5, 3, 9])
        got = e.dot(left, right)
        expect = np.einsum("ij,ij->i", vals[left], vals[right])
        np.testing.assert_allclose(got, expect, rtol=1e-5)

    def test_rank_one_update(self, ps):
        e = ps.create_embedding("emb", rows=4, dim=3)
        vals = np.array([[1, 0, 0], [0, 1, 0], [0, 0, 1], [1, 1, 1]],
                        dtype=np.float32)
        e.set_rows(np.arange(4), vals)
        e.rank_one_update(np.array([0]), np.array([1]), np.array([2.0]))
        got = e.pull_rows(np.arange(4))
        # A[0] += 2*A[1]; A[1] += 2*A[0]_old
        np.testing.assert_allclose(got[0], [1, 2, 0])
        np.testing.assert_allclose(got[1], [2, 1, 0])


class TestNeighborTable:
    def test_push_get_roundtrip(self, ps):
        t = ps.create_neighbor_table("adj", num_vertices=100)
        t.push(np.array([5]), [np.array([1, 2, 3])])
        t.push(np.array([5]), [np.array([3, 4])])
        got = t.get(np.array([5, 6]))
        assert got[0].tolist() == [1, 2, 3, 4]
        assert got[1].tolist() == []

    def test_degrees(self, ps):
        t = ps.create_neighbor_table("adj", num_vertices=10)
        t.push(np.array([1, 2]), [np.array([0]), np.array([0, 1, 3])])
        assert t.degrees(np.array([1, 2, 9])).tolist() == [1, 3, 0]

    def test_compact_preserves_reads(self, ps):
        t = ps.create_neighbor_table("adj", num_vertices=50)
        t.push(np.array([7, 13]), [np.array([1, 5]), np.array([2])])
        t.compact()
        got = t.get(np.array([7, 13, 20]))
        assert got[0].tolist() == [1, 5]
        assert got[1].tolist() == [2]
        assert got[2].tolist() == []
        assert t.num_vertices() == 2


class TestOptimizers:
    def test_sgd_step(self):
        opt = SGD(lr=0.1)
        p = np.ones(4)
        opt.step(p, np.ones(4), {})
        np.testing.assert_allclose(p, 0.9)

    def test_momentum_accumulates(self):
        opt = Momentum(lr=0.1, momentum=0.5)
        p = np.zeros(2)
        state = opt.init_state(p.shape, p.dtype)
        opt.step(p, np.ones(2), state)
        opt.step(p, np.ones(2), state)
        np.testing.assert_allclose(p, [-0.25, -0.25])

    def test_adagrad_shrinks_steps(self):
        opt = AdaGrad(lr=1.0)
        p = np.zeros(1)
        state = opt.init_state(p.shape, p.dtype)
        opt.step(p, np.array([1.0]), state)
        first = -p[0]
        p0 = p[0]
        opt.step(p, np.array([1.0]), state)
        second = p0 - p[0]
        assert second < first

    def test_adam_bias_correction_first_step(self):
        opt = Adam(lr=0.1)
        p = np.zeros(3)
        state = opt.init_state(p.shape, p.dtype)
        opt.step(p, np.ones(3), state)
        # First Adam step is ~ -lr regardless of gradient scale.
        np.testing.assert_allclose(p, -0.1, rtol=1e-4)

    def test_server_side_adam_on_matrix(self, ps):
        m = ps.create_matrix("w", 6, 4, dtype=np.float64,
                             optimizer=Adam(lr=0.1))
        grad = np.ones((6, 4))
        m.apply_gradients(grad)
        np.testing.assert_allclose(m.to_numpy(), -0.1, rtol=1e-4)

    def test_gradient_without_optimizer_rejected(self, ps):
        m = ps.create_matrix("w", 4, 2)
        with pytest.raises(PSError):
            m.apply_gradients(np.ones((4, 2)))


class TestCheckpointRecovery:
    def test_checkpoint_and_relaxed_recovery(self, ps):
        v = ps.create_vector("v", 100, partition="hash")
        v.push(np.arange(100), np.arange(100, dtype=float))
        ps.checkpoint_matrix("v")
        before = v.to_numpy()
        ps.kill_server(1)
        assert ps.master.health_check() == [1]
        recovered = ps.recover(mode="relaxed")
        assert recovered == [1]
        np.testing.assert_allclose(v.to_numpy(), before)

    def test_strict_recovery_rolls_everything_back(self, ps):
        v = ps.create_vector("v", 60)
        v.push(np.arange(60), np.ones(60))
        ps.checkpoint_matrix("v")
        # Updates after the checkpoint are lost under strict recovery.
        v.push(np.arange(60), np.ones(60))
        ps.kill_server(0)
        ps.recover(mode="strict")
        np.testing.assert_allclose(v.to_numpy(), np.ones(60))

    def test_relaxed_recovery_keeps_live_servers_state(self, ps):
        v = ps.create_vector("v", 60, partition="hash")
        v.push(np.arange(60), np.ones(60))
        ps.checkpoint_matrix("v")
        v.push(np.arange(60), np.ones(60))  # post-checkpoint progress
        ps.kill_server(2)
        ps.recover(mode="relaxed")
        vals = v.to_numpy()
        # Partitions on live servers keep value 2; the dead server's
        # partitions rolled back to 1.
        assert set(np.unique(vals).tolist()) == {1.0, 2.0}

    def test_recovery_without_checkpoint_raises(self, ps):
        ps.create_vector("v", 10)
        ps.kill_server(0)
        with pytest.raises(CheckpointNotFoundError):
            ps.recover()

    def test_neighbor_table_checkpoint_recovery(self, ps):
        t = ps.create_neighbor_table("adj", num_vertices=40)
        t.push(np.arange(40),
               [np.array([i, (i + 1) % 40]) for i in range(40)])
        t.checkpoint()
        ps.kill_server(1)
        ps.recover()
        got = t.get(np.arange(40))
        assert all(len(g) == 2 for g in got)

    def test_recovery_advances_sim_time(self, ps):
        v = ps.create_vector("v", 10)
        ps.checkpoint_matrix("v")
        t0 = ps.spark.sim_time()
        ps.kill_server(0)
        ps.recover()
        assert ps.spark.sim_time() > t0

    def test_restart_counted(self, ps):
        ps.create_vector("v", 10)
        ps.checkpoint_matrix("v")
        ps.kill_server(2)
        ps.recover()
        assert ps.servers[2].container.restarts == 1
        assert ps.master.recoveries == 1

    def test_failed_recover_leaves_cluster_untouched(self, ps):
        # Exception safety: if any needed checkpoint is missing, recover()
        # must verify the full restore plan BEFORE restarting/wiping any
        # server — not leave it revived-but-empty.
        v = ps.create_vector("v", 60, partition="hash")
        v.push(np.arange(60), np.ones(60))
        ps.checkpoint_matrix("v")
        w = ps.create_vector("w", 60, partition="hash")  # no checkpoint
        w.push(np.arange(60), np.full(60, 7.0))
        ps.kill_server(1)
        with pytest.raises(CheckpointNotFoundError):
            ps.recover(mode="relaxed")
        # The dead server was neither restarted nor revived.
        assert not ps.servers[1].container.alive
        assert ps.servers[1].container.restarts == 0
        assert not ps.spark.rpc.is_alive(ps.servers[1].id)
        assert ps.master.recoveries == 0

    def test_strict_recover_verifies_all_matrices_first(self, ps):
        v = ps.create_vector("v", 60)
        v.push(np.arange(60), np.ones(60))
        ps.checkpoint_matrix("v")
        ps.create_vector("w", 60)  # never checkpointed
        ps.kill_server(0)
        # Strict mode restores every partition of every matrix; the
        # missing "w" checkpoint must abort before any server restart.
        with pytest.raises(CheckpointNotFoundError):
            ps.recover(mode="strict")
        assert not ps.servers[0].container.alive
        assert ps.servers[0].container.restarts == 0
        assert ps.master.recoveries == 0


class TestSync:
    def test_bsp_barrier_aligns_clocks(self, ps):
        ps.spark.executors[0].container.clock.advance(10)
        ps.servers[0].container.clock.advance(3)
        t = ps.barrier()
        assert t >= 10
        assert ps.servers[1].container.clock.now_s == t

    def test_asp_barrier_does_not_align(self):
        spark, psctx = make_ps(sync_mode="asp")
        try:
            spark.executors[0].container.clock.advance(10)
            psctx.barrier()
            assert spark.driver_clock.now_s < 10
            assert psctx.sync.epoch == 1
        finally:
            psctx.stop()
            spark.stop()

    def test_invalid_mode_rejected(self):
        cluster = ClusterConfig(
            num_executors=1, executor_mem_bytes=1 << 30,
            num_servers=2, server_mem_bytes=1 << 30,
        )
        spark = SparkContext(cluster)
        with pytest.raises(ConfigError):
            PSContext(spark, sync_mode="chaos")
        spark.stop()


class TestContextConfig:
    def test_requires_servers(self):
        cluster = ClusterConfig(num_executors=1,
                                executor_mem_bytes=1 << 30)
        spark = SparkContext(cluster)
        with pytest.raises(ConfigError):
            PSContext(spark)
        spark.stop()

    def test_pull_inside_task_charges_executor(self, ps):
        v = ps.create_vector("v", 100)
        v.push(np.arange(100), np.ones(100))
        spark = ps.spark

        def work(it):
            keys = np.array([x for x in it], dtype=np.int64)
            return float(v.pull(keys).sum())

        total = sum(
            spark.parallelize(range(100), 2).foreach_partition(work)
        )
        assert total == pytest.approx(100.0)
        assert any(
            ex.container.clock.busy_s > 0 for ex in spark.executors
        )


class TestPeriodicCheckpoint:
    def test_barrier_triggers_checkpoint(self):
        cluster = ClusterConfig(
            num_executors=2, executor_mem_bytes=1 << 40,
            num_servers=2, server_mem_bytes=1 << 40,
        )
        spark = SparkContext(cluster)
        psctx = PSContext(spark, checkpoint_interval=2)
        try:
            v = psctx.create_vector("v", 20)
            v.push(np.arange(20), np.ones(20))
            psctx.barrier()  # epoch 1: no checkpoint
            assert not spark.hdfs.exists(psctx.checkpoint_path("v", 0))
            psctx.barrier()  # epoch 2: periodic checkpoint fires
            assert spark.hdfs.exists(psctx.checkpoint_path("v", 0))
            # Recovery works off the periodic checkpoint.
            psctx.kill_server(0)
            psctx.recover()
            np.testing.assert_allclose(v.to_numpy(), np.ones(20))
        finally:
            psctx.stop()
            spark.stop()

    def test_zero_interval_means_manual_only(self):
        cluster = ClusterConfig(
            num_executors=2, executor_mem_bytes=1 << 40,
            num_servers=2, server_mem_bytes=1 << 40,
        )
        spark = SparkContext(cluster)
        psctx = PSContext(spark)
        try:
            psctx.create_vector("v", 10)
            for _ in range(5):
                psctx.barrier()
            assert not spark.hdfs.exists(psctx.checkpoint_path("v", 0))
        finally:
            psctx.stop()
            spark.stop()


class TestIterationCheckpointPolicy:
    def _make(self, interval=1):
        cluster = ClusterConfig(
            num_executors=2, executor_mem_bytes=1 << 40,
            num_servers=2, server_mem_bytes=1 << 40,
        )
        spark = SparkContext(cluster)
        return spark, PSContext(spark, checkpoint_interval=interval)

    def test_start_iterations_writes_baseline_checkpoint(self):
        spark, psctx = self._make()
        try:
            v = psctx.create_vector("v", 20)
            v.push(np.arange(20), np.ones(20))
            psctx.start_iterations()
            assert spark.hdfs.exists(psctx.checkpoint_path("v", 0))
            assert psctx.progress == 0
        finally:
            psctx.stop()
            spark.stop()

    def test_iteration_driven_disables_epoch_checkpoints(self):
        # Once an algorithm drives checkpoints by iteration, barrier()
        # must not also fire the epoch-based policy (double-writes would
        # move the rollback boundary mid-iteration).
        spark, psctx = self._make(interval=1)
        try:
            v = psctx.create_vector("v", 20)
            psctx.start_iterations()
            v.push(np.arange(20), np.ones(20))
            psctx.barrier()
            psctx.kill_server(0)
            psctx.recover(mode="strict")
            # The barrier did NOT checkpoint the post-push state: strict
            # recovery rolls back to the start_iterations() baseline.
            np.testing.assert_allclose(v.to_numpy(), 0.0)
        finally:
            psctx.stop()
            spark.stop()

    def test_complete_iteration_checkpoints_every_nth(self):
        spark, psctx = self._make(interval=2)
        try:
            v = psctx.create_vector("v", 20)
            psctx.start_iterations()
            v.push(np.arange(20), np.ones(20))
            psctx.complete_iteration()  # progress 1: no checkpoint yet
            psctx.kill_server(0)
            psctx.recover(mode="strict")
            np.testing.assert_allclose(v.to_numpy(), 0.0)
            assert psctx.progress == 0  # rolled back to the baseline
            v.push(np.arange(20), np.ones(20))
            psctx.complete_iteration()
            v.push(np.arange(20), np.ones(20))
            psctx.complete_iteration()  # progress 2: checkpoint fires
            v.push(np.arange(20), np.ones(20))  # post-checkpoint work
            psctx.kill_server(1)
            psctx.recover(mode="strict")
            np.testing.assert_allclose(v.to_numpy(), 2.0)
            assert psctx.progress == 2
        finally:
            psctx.stop()
            spark.stop()

    def test_rollback_restores_checkpoint_state(self):
        spark, psctx = self._make(interval=1)
        try:
            v = psctx.create_vector("v", 20)
            v.push(np.arange(20), np.ones(20))
            psctx.start_iterations()
            v.push(np.arange(20), np.ones(20))  # dirty, post-baseline
            psctx.rollback()
            np.testing.assert_allclose(v.to_numpy(), 1.0)
            assert psctx.progress == 0
        finally:
            psctx.stop()
            spark.stop()

    def test_recovery_generations_distinguish_modes(self):
        spark, psctx = self._make(interval=1)
        try:
            psctx.create_vector("v", 20)
            psctx.start_iterations()
            psctx.kill_server(0)
            psctx.recover(mode="relaxed")
            assert psctx.recovery_generation == 1
            assert psctx.rollback_generation == 0  # relaxed: no rollback
            psctx.kill_server(0)
            psctx.recover(mode="strict")
            assert psctx.recovery_generation == 2
            assert psctx.rollback_generation == 1
        finally:
            psctx.stop()
            spark.stop()


class TestPullCache:
    def test_hits_skip_network(self, ps):
        from repro.common.metrics import RPC_CALLS

        v = ps.create_vector("v", 50)
        v.push(np.arange(50), np.arange(50, dtype=float))
        ps.enable_pull_cache("v", staleness=0)
        keys = np.arange(10)
        first = v.pull(keys)
        calls_after_first = ps.spark.metrics.get(RPC_CALLS)
        second = v.pull(keys)
        np.testing.assert_allclose(first, second)
        # Second pull fully served from cache: no new RPCs.
        assert ps.spark.metrics.get(RPC_CALLS) == calls_after_first
        cache = ps.pull_cache("v")
        assert cache.stats.hits == 10
        assert cache.stats.hit_rate > 0.4

    def test_barrier_expires_with_zero_staleness(self, ps):
        v = ps.create_vector("v", 20)
        ps.enable_pull_cache("v", staleness=0)
        v.pull(np.arange(5))
        ps.barrier()
        cache = ps.pull_cache("v")
        before_misses = cache.stats.misses
        v.pull(np.arange(5))
        assert cache.stats.misses == before_misses + 5

    def test_staleness_window_serves_across_epochs(self, ps):
        v = ps.create_vector("v", 20)
        ps.enable_pull_cache("v", staleness=2)
        v.pull(np.arange(5))
        ps.barrier()
        ps.barrier()
        cache = ps.pull_cache("v")
        v.pull(np.arange(5))
        assert cache.stats.hits == 5

    def test_own_writes_invalidate(self, ps):
        v = ps.create_vector("v", 20)
        ps.enable_pull_cache("v", staleness=10)
        assert v.pull(np.array([3]))[0] == 0.0
        v.push(np.array([3]), np.array([7.0]))
        assert v.pull(np.array([3]))[0] == 7.0  # not the stale 0.0

    def test_partial_hit_merges_fetch(self, ps):
        v = ps.create_vector("v", 20)
        v.set(np.arange(20), np.arange(20, dtype=float))
        ps.enable_pull_cache("v", staleness=5)
        v.pull(np.array([1, 2, 3]))
        got = v.pull(np.array([2, 3, 4, 5]))
        assert got.tolist() == [2.0, 3.0, 4.0, 5.0]

    def test_recovery_clears_caches(self, ps):
        v = ps.create_vector("v", 20)
        ps.enable_pull_cache("v", staleness=100)
        v.pull(np.arange(5))
        ps.checkpoint_matrix("v")
        ps.kill_server(0)
        ps.recover()
        assert len(ps.pull_cache("v")) == 0

    def test_unknown_matrix_rejected(self, ps):
        with pytest.raises(MatrixNotFoundError):
            ps.enable_pull_cache("ghost")

    def test_drop_matrix_drops_cache(self, ps):
        ps.create_vector("v", 10)
        ps.enable_pull_cache("v")
        ps.drop_matrix("v")
        assert ps.pull_cache("v") is None
