"""Unit tests for repro.common.batch and the O(1)/islice sizeof paths."""

import numpy as np
import pytest

from repro.common.batch import (
    COMBINE_FNS,
    RecordBatch,
    accumulate_sequential,
    explode_records,
    iter_records,
    record_count,
    records_nbytes,
    segment_reduce,
    split_batch,
    split_indices,
)
from repro.common.sizeof import (
    CONTAINER_ENTRY_BYTES,
    sizeof,
    sizeof_records,
)


def make_batch(n, dim=None, seed=3):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, max(1, n // 2), size=n).astype(np.int64)
    if dim is None:
        values = rng.integers(0, 100, size=n).astype(np.float64)
    else:
        values = rng.integers(0, 100, size=(n, dim)).astype(np.float32)
    return RecordBatch(keys, values)


class TestRecordBatch:
    def test_basic_shape(self):
        b = make_batch(10)
        assert len(b) == b.num_records == 10
        assert b.is_columnar
        assert "10 records" in repr(b)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            RecordBatch(np.arange(3), np.zeros(4))
        with pytest.raises(ValueError):
            RecordBatch(np.arange(3), [1, 2])

    def test_non_numeric_keys_rejected(self):
        with pytest.raises(ValueError):
            RecordBatch(np.asarray(["a", "b"]), np.zeros(2))
        with pytest.raises(ValueError):
            RecordBatch(np.zeros((2, 2)), np.zeros(2))

    def test_pairs_roundtrip_1d(self):
        b = make_batch(17)
        pairs = list(b.to_pairs())
        assert pairs == list(zip(b.keys.tolist(), b.values.tolist()))
        back = RecordBatch.from_pairs(pairs)
        np.testing.assert_array_equal(back.keys, b.keys)
        np.testing.assert_array_equal(back.values, b.values)

    def test_pairs_roundtrip_2d(self):
        b = make_batch(9, dim=4)
        pairs = list(b.to_pairs())
        assert len(pairs) == 9
        np.testing.assert_array_equal(pairs[3][1], b.values[3])
        back = RecordBatch.from_pairs(pairs)
        assert back.is_columnar
        np.testing.assert_array_equal(back.values, b.values)

    def test_boxed_fallback(self):
        b = RecordBatch(np.arange(3), [{"a": 1}, {"b": 2}, {"c": 3}])
        assert not b.is_columnar
        assert [v for _k, v in b.to_pairs()] == [{"a": 1}, {"b": 2}, {"c": 3}]

    def test_from_pairs_boxed_values(self):
        b = RecordBatch.from_pairs([(1, {"x": 1}), (2, {"y": 2})])
        assert not b.is_columnar

    def test_concat(self):
        parts = [make_batch(5, seed=s) for s in range(3)]
        merged = RecordBatch.concat(parts)
        assert len(merged) == 15
        np.testing.assert_array_equal(
            merged.keys, np.concatenate([p.keys for p in parts])
        )
        assert RecordBatch.concat(parts[:1]) is parts[0]

    def test_select(self):
        b = make_batch(10)
        idx = np.asarray([7, 2, 2])
        s = b.select(idx)
        np.testing.assert_array_equal(s.keys, b.keys[idx])
        np.testing.assert_array_equal(s.values, b.values[idx])


class TestLogicalNbytes:
    """The metering contract: a batch charges the bytes of the boxed list
    of pairs it stands in for — bit-for-bit what sizeof would estimate."""

    @pytest.mark.parametrize("n", [0, 1, 7, 32, 33, 100, 1000])
    def test_matches_boxed_pairs_1d(self, n):
        b = make_batch(n)
        boxed = list(b.to_pairs())
        assert b.logical_nbytes() == sizeof(boxed) == sizeof_records(boxed)

    @pytest.mark.parametrize("n", [1, 40, 333])
    @pytest.mark.parametrize("dim", [1, 8, 17])
    def test_matches_boxed_pairs_2d(self, n, dim):
        b = make_batch(n, dim=dim)
        boxed = list(b.to_pairs())
        assert b.logical_nbytes() == sizeof(boxed)

    def test_boxed_fallback_matches_sampling(self):
        payload = [{"k": float(i)} for i in range(100)]
        b = RecordBatch(np.arange(100), payload)
        boxed = list(b.to_pairs())
        assert b.logical_nbytes() == sizeof(boxed)

    def test_sizeof_uses_o1_hint(self):
        b = make_batch(10)
        assert sizeof(b) == b.logical_nbytes()
        assert sizeof_records(b) == b.logical_nbytes()

    def test_records_nbytes_ignores_chunking(self):
        parts = [make_batch(40, seed=s) for s in range(3)]
        flat = [p for b in parts for p in b.to_pairs()]
        assert records_nbytes(list(parts)) == sizeof_records(flat)
        # Mixed partitions charge boxed records plus batch records.
        mixed = [parts[0], ("extra", 1.0)]
        assert records_nbytes(mixed) > records_nbytes([parts[0]])
        # Pure boxed lists defer to sizeof_records exactly.
        assert records_nbytes(flat) == sizeof_records(flat)
        assert records_nbytes(parts[0]) == parts[0].logical_nbytes()


class TestRecordHelpers:
    def test_record_count(self):
        assert record_count((1, 2)) == 1
        assert record_count(make_batch(42)) == 42

    def test_iter_and_explode(self):
        b = make_batch(5)
        mixed = [("x", 1), b, ("y", 2)]
        flat = list(iter_records(mixed))
        assert flat[0] == ("x", 1) and flat[-1] == ("y", 2)
        assert len(flat) == 7
        assert explode_records(mixed) == flat
        plain = [("x", 1), ("y", 2)]
        assert explode_records(plain) is plain


class TestSplitAndReduce:
    def test_split_indices_matches_mask_loop(self):
        rng = np.random.default_rng(11)
        pids = rng.integers(0, 7, size=500)
        got = split_indices(pids)
        assert [pid for pid, _ in got] == np.unique(pids).tolist()
        for pid, idx in got:
            np.testing.assert_array_equal(idx, np.flatnonzero(pids == pid))
        assert split_indices(np.empty(0, dtype=np.int64)) == []

    def test_split_batch(self):
        b = make_batch(200)
        pids = b.keys % 4
        buckets = split_batch(b.keys, b.values, pids)
        assert sum(len(x) for x in buckets.values()) == 200
        for pid, bucket in buckets.items():
            assert (bucket.keys % 4 == pid).all()

    @pytest.mark.parametrize("op", ["add", "min", "max"])
    def test_segment_reduce_matches_boxed_fold(self, op):
        rng = np.random.default_rng(5)
        keys = rng.integers(0, 40, size=1000).astype(np.int64)
        # Integer-valued floats: any summation order is exact, so the
        # comparison with the sequential boxed fold is bitwise.
        values = rng.integers(-50, 50, size=1000).astype(np.float64)
        fn = COMBINE_FNS[op]
        expect = {}
        for k, v in zip(keys.tolist(), values.tolist()):
            expect[k] = fn(expect[k], v) if k in expect else v
        ukeys, reduced = segment_reduce(keys, values, op)
        assert ukeys.tolist() == sorted(expect)
        assert reduced.dtype == values.dtype
        for k, v in zip(ukeys.tolist(), reduced.tolist()):
            assert v == expect[k]

    def test_segment_reduce_2d(self):
        keys = np.asarray([3, 1, 3, 1, 2])
        values = np.arange(10.0).reshape(5, 2)
        ukeys, reduced = segment_reduce(keys, values, "add")
        np.testing.assert_array_equal(ukeys, [1, 2, 3])
        np.testing.assert_array_equal(reduced[0], values[1] + values[3])
        np.testing.assert_array_equal(reduced[2], values[0] + values[2])

    def test_segment_reduce_empty_and_errors(self):
        keys = np.empty(0, dtype=np.int64)
        ukeys, reduced = segment_reduce(keys, np.empty(0), "add")
        assert len(ukeys) == 0 and len(reduced) == 0
        with pytest.raises(ValueError):
            segment_reduce(np.arange(3), np.arange(3), "mul")


class TestAccumulateSequential:
    @pytest.mark.parametrize("n", [0, 1, 2, 9, 1000])
    def test_bitwise_matches_python_loop(self, n):
        step = 1.5e-6
        start = 0.123456
        acc = start
        for _ in range(n):
            acc += step
        assert accumulate_sequential(start, step, n) == acc


class TestSizeofStreaming:
    """The islice satellite: same estimates, no full materialization."""

    @pytest.mark.parametrize("n", [0, 5, 32, 33, 100, 2049])
    def test_dict_estimate_unchanged(self, n):
        d = {i: float(i) for i in range(n)}
        items = list(d.items())
        # Reference: the original formula over the materialized list.
        if n == 0:
            expect = CONTAINER_ENTRY_BYTES
        elif n <= 32:
            expect = (CONTAINER_ENTRY_BYTES + n * CONTAINER_ENTRY_BYTES
                      + sum(sizeof(x) for x in items))
        else:
            step = max(1, n // 32)
            sample = items[::step][:32]
            body = int(sum(sizeof(x) for x in sample) / len(sample) * n)
            expect = (CONTAINER_ENTRY_BYTES + n * CONTAINER_ENTRY_BYTES
                      + body)
        assert sizeof(d) == expect

    def test_set_estimate_scales(self):
        small = sizeof({1, 2, 3})
        big = sizeof(set(range(1000)))
        assert big > small
        assert big == sizeof(frozenset(range(1000)))
