"""Shared fixtures for the test suite."""

import pytest

from repro.common.config import ClusterConfig
from repro.dataflow.context import SparkContext


def make_context(num_executors: int = 4, executor_mem: int | None = None,
                 **kwargs) -> SparkContext:
    """A small SparkContext for tests; unlimited memory unless given."""
    cluster = ClusterConfig(
        num_executors=num_executors,
        executor_mem_bytes=executor_mem if executor_mem else 1 << 40,
        **kwargs,
    )
    return SparkContext(cluster)


@pytest.fixture
def sc():
    ctx = make_context()
    yield ctx
    ctx.stop()
