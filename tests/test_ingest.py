"""Tests for the Kafka-style streaming ingestion."""

import numpy as np
import pytest

from repro.common.config import ClusterConfig
from repro.common.errors import ConfigError
from repro.common.metrics import MetricsRegistry
from repro.core.context import PSGraphContext
from repro.hdfs.filesystem import Hdfs
from repro.ingest.kafka import EdgeStreamConsumer, KafkaTopic


def make_psg():
    cluster = ClusterConfig(
        num_executors=2, executor_mem_bytes=1 << 40,
        num_servers=2, server_mem_bytes=1 << 40,
    )
    return PSGraphContext(cluster)


class TestKafkaTopic:
    def test_produce_partitions_by_src(self):
        t = KafkaTopic("edges", num_partitions=2)
        t.produce(np.array([0, 1, 2, 3]), np.array([9, 9, 9, 9]))
        assert t.end_offsets() == [2, 2]
        assert t.read(0, 0) == [(0, 9), (2, 9)]
        assert t.read(1, 0) == [(1, 9), (3, 9)]

    def test_read_from_offset_with_limit(self):
        t = KafkaTopic("edges", num_partitions=1)
        t.produce(np.zeros(5, dtype=int), np.arange(5))
        assert t.read(0, 2, max_records=2) == [(0, 2), (0, 3)]

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            KafkaTopic("t", num_partitions=0)
        t = KafkaTopic("t")
        with pytest.raises(ConfigError):
            t.produce(np.array([1]), np.array([1, 2]))


class TestConsumer:
    def test_lands_edges_on_hdfs(self):
        t = KafkaTopic("edges", num_partitions=2)
        fs = Hdfs(metrics=MetricsRegistry())
        consumer = EdgeStreamConsumer(t, fs)
        t.produce(np.array([0, 1]), np.array([2, 3]))
        assert consumer.lag == 2
        assert consumer.poll() == 2
        assert consumer.lag == 0
        files = fs.listdir("/ingest")
        lines = [l for f in files for l in fs.read_lines(f)]
        assert sorted(lines) == ["0\t2", "1\t3"]

    def test_poll_empty_returns_zero(self):
        t = KafkaTopic("edges")
        fs = Hdfs(metrics=MetricsRegistry())
        consumer = EdgeStreamConsumer(t, fs)
        assert consumer.poll() == 0

    def test_drain_consumes_everything(self):
        t = KafkaTopic("edges", num_partitions=3)
        fs = Hdfs(metrics=MetricsRegistry())
        m = MetricsRegistry()
        consumer = EdgeStreamConsumer(t, fs, metrics=m)
        t.produce(np.arange(10), (np.arange(10) + 1) % 10)
        assert consumer.drain() == 10
        assert m.get("ingest.records") == 10

    def test_incremental_ps_table_updates(self):
        ctx = make_psg()
        try:
            table = ctx.ps.create_neighbor_table("stream-adj", 100)
            t = KafkaTopic("edges", num_partitions=2)
            consumer = EdgeStreamConsumer(t, ctx.hdfs, table=table)
            t.produce(np.array([1, 2]), np.array([2, 3]))
            consumer.poll()
            assert table.get(np.array([2]))[0].tolist() == [1, 3]
            # A later batch merges, never replaces.
            t.produce(np.array([2]), np.array([7]))
            consumer.poll()
            assert table.get(np.array([2]))[0].tolist() == [1, 3, 7]
        finally:
            ctx.stop()

    def test_landed_history_feeds_batch_jobs(self):
        """The pipeline story: streamed edges are visible to batch jobs."""
        from repro.core.algorithms import CommonNeighbor
        from repro.core.runner import GraphRunner

        ctx = make_psg()
        try:
            t = KafkaTopic("edges", num_partitions=2)
            consumer = EdgeStreamConsumer(t, ctx.hdfs, landing_dir="/land")
            t.produce(np.array([0, 1, 2]), np.array([1, 2, 0]))
            consumer.drain()
            t.produce(np.array([0]), np.array([3]))
            consumer.drain()
            result = GraphRunner(ctx).run(CommonNeighbor(), "/land")
            assert result.output.count() == 4
        finally:
            ctx.stop()
