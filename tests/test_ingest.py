"""Tests for the Kafka-style streaming ingestion."""

import numpy as np
import pytest

from repro.common.config import ClusterConfig
from repro.common.errors import ConfigError
from repro.common.metrics import MetricsRegistry
from repro.core.context import PSGraphContext
from repro.hdfs.filesystem import Hdfs
from repro.ingest.kafka import EdgeStreamConsumer, KafkaTopic
from repro.ingest.mutations import (
    EDGE_ADD,
    EDGE_DEL,
    VERTEX_DEL,
    Mutation,
    decode_line,
    encode_line,
    group_runs,
    replay_landing,
)


def make_psg():
    cluster = ClusterConfig(
        num_executors=2, executor_mem_bytes=1 << 40,
        num_servers=2, server_mem_bytes=1 << 40,
    )
    return PSGraphContext(cluster)


class TestMutations:
    def test_encode_decode_roundtrip(self):
        for m in [Mutation(EDGE_ADD, 3, 7), Mutation(EDGE_DEL, 3, 7),
                  Mutation(VERTEX_DEL, 5, -1)]:
            assert decode_line(encode_line(m)) == m

    def test_add_encoding_is_legacy_edge_line(self):
        # Batch jobs parse landing files as 'src<TAB>dst'; adds must keep
        # that shape so the streamed history feeds them unchanged.
        assert encode_line(Mutation(EDGE_ADD, 3, 7)) == "3\t7"

    def test_group_runs_preserves_order(self):
        ms = [Mutation(EDGE_ADD, 1, 2), Mutation(EDGE_ADD, 2, 3),
              Mutation(EDGE_DEL, 1, 2), Mutation(EDGE_ADD, 4, 5)]
        runs = group_runs(ms)
        assert [op for op, _, _ in runs] == [EDGE_ADD, EDGE_DEL, EDGE_ADD]
        assert runs[0][1].tolist() == [1, 2]
        assert runs[2][1].tolist() == [4]


class TestKafkaTopic:
    def test_produce_partitions_by_src(self):
        t = KafkaTopic("edges", num_partitions=2)
        t.produce(np.array([0, 1, 2, 3]), np.array([9, 9, 9, 9]))
        assert t.end_offsets() == [2, 2]
        assert t.read(0, 0) == [Mutation(EDGE_ADD, 0, 9),
                                Mutation(EDGE_ADD, 2, 9)]
        assert t.read(1, 0) == [Mutation(EDGE_ADD, 1, 9),
                                Mutation(EDGE_ADD, 3, 9)]

    def test_read_from_offset_with_limit(self):
        t = KafkaTopic("edges", num_partitions=1)
        t.produce(np.zeros(5, dtype=int), np.arange(5))
        assert t.read(0, 2, max_records=2) == [Mutation(EDGE_ADD, 0, 2),
                                               Mutation(EDGE_ADD, 0, 3)]

    def test_typed_removals(self):
        t = KafkaTopic("edges", num_partitions=1)
        t.produce_removals(np.array([1]), np.array([2]))
        t.produce_vertex_removals(np.array([4]))
        assert t.read(0, 0) == [Mutation(EDGE_DEL, 1, 2),
                                Mutation(VERTEX_DEL, 4, -1)]

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            KafkaTopic("t", num_partitions=0)
        t = KafkaTopic("t")
        with pytest.raises(ConfigError):
            t.produce(np.array([1]), np.array([1, 2]))


class TestConsumer:
    def test_lands_edges_on_hdfs(self):
        t = KafkaTopic("edges", num_partitions=2)
        fs = Hdfs(metrics=MetricsRegistry())
        consumer = EdgeStreamConsumer(t, fs)
        t.produce(np.array([0, 1]), np.array([2, 3]))
        assert consumer.lag == 2
        assert consumer.poll() == 2
        assert consumer.lag == 0
        files = fs.listdir("/ingest")
        lines = [l for f in files for l in fs.read_lines(f)]
        assert sorted(lines) == ["0\t2", "1\t3"]

    def test_poll_empty_returns_zero(self):
        t = KafkaTopic("edges")
        fs = Hdfs(metrics=MetricsRegistry())
        consumer = EdgeStreamConsumer(t, fs)
        assert consumer.poll() == 0

    def test_empty_polls_not_counted_as_consuming(self):
        # Regression: empty polls used to inflate ingest.polls, wrecking
        # the records-per-poll ratio downstream dashboards compute.
        t = KafkaTopic("edges")
        fs = Hdfs(metrics=MetricsRegistry())
        m = MetricsRegistry()
        consumer = EdgeStreamConsumer(t, fs, metrics=m)
        consumer.poll()
        consumer.poll()
        assert m.get("ingest.polls") == 0
        assert m.get("ingest.polls.empty") == 2
        t.produce(np.array([1]), np.array([2]))
        consumer.poll()
        assert m.get("ingest.polls") == 1
        assert m.get("ingest.polls.empty") == 2

    def test_drain_consumes_everything(self):
        t = KafkaTopic("edges", num_partitions=3)
        fs = Hdfs(metrics=MetricsRegistry())
        m = MetricsRegistry()
        consumer = EdgeStreamConsumer(t, fs, metrics=m)
        t.produce(np.arange(10), (np.arange(10) + 1) % 10)
        assert consumer.drain() == 10
        assert m.get("ingest.records") == 10

    def test_incremental_ps_table_updates(self):
        ctx = make_psg()
        try:
            table = ctx.ps.create_neighbor_table("stream-adj", 100)
            t = KafkaTopic("edges", num_partitions=2)
            consumer = EdgeStreamConsumer(t, ctx.hdfs, table=table)
            t.produce(np.array([1, 2]), np.array([2, 3]))
            consumer.poll()
            assert table.get(np.array([2]))[0].tolist() == [1, 3]
            # A later batch merges, never replaces.
            t.produce(np.array([2]), np.array([7]))
            consumer.poll()
            assert table.get(np.array([2]))[0].tolist() == [1, 3, 7]
        finally:
            ctx.stop()

    def test_removals_reach_ps_table(self):
        ctx = make_psg()
        try:
            table = ctx.ps.create_neighbor_table("stream-adj", 100)
            t = KafkaTopic("edges", num_partitions=2)
            consumer = EdgeStreamConsumer(t, ctx.hdfs, table=table)
            t.produce(np.array([1, 2, 3]), np.array([2, 3, 4]))
            consumer.poll()
            t.produce_removals(np.array([2]), np.array([3]))
            consumer.poll()
            assert table.get(np.array([2]))[0].tolist() == [1]
            assert table.get(np.array([3]))[0].tolist() == [4]
            t.produce_vertex_removals(np.array([4]))
            consumer.poll()
            assert table.get(np.array([3]))[0].tolist() == []
            assert table.get(np.array([4]))[0].tolist() == []
        finally:
            ctx.stop()

    def test_landed_history_feeds_batch_jobs(self):
        """The pipeline story: streamed edges are visible to batch jobs."""
        from repro.core.algorithms import CommonNeighbor
        from repro.core.runner import GraphRunner

        ctx = make_psg()
        try:
            t = KafkaTopic("edges", num_partitions=2)
            consumer = EdgeStreamConsumer(t, ctx.hdfs, landing_dir="/land")
            t.produce(np.array([0, 1, 2]), np.array([1, 2, 0]))
            consumer.drain()
            t.produce(np.array([0]), np.array([3]))
            consumer.drain()
            result = GraphRunner(ctx).run(CommonNeighbor(), "/land")
            assert result.output.count() == 4
        finally:
            ctx.stop()

    def test_replay_landing_reconstructs_edge_set(self):
        t = KafkaTopic("edges", num_partitions=2)
        fs = Hdfs(metrics=MetricsRegistry())
        consumer = EdgeStreamConsumer(t, fs, landing_dir="/land")
        t.produce(np.array([0, 1, 2]), np.array([1, 2, 3]))
        consumer.drain()
        t.produce_removals(np.array([1]), np.array([2]))
        t.produce_vertex_removals(np.array([3]))
        consumer.drain()
        src, dst = replay_landing(fs, "/land")
        assert list(zip(src.tolist(), dst.tolist())) == [(0, 1)]


class TestAtLeastOnceDelivery:
    """The offset-commit bugfix: no loss, no duplicates across crashes."""

    def _crashing_hdfs(self, fs, fail_after):
        # Wrap write_text so the Nth landing write blows up mid-poll.
        real = fs.write_text
        state = {"writes": 0}

        def flaky(path, lines, overwrite=False):
            state["writes"] += 1
            if state["writes"] == fail_after:
                raise IOError("datanode lost")
            return real(path, lines, overwrite=overwrite)

        fs.write_text = flaky
        return state

    def test_crash_mid_poll_commits_nothing(self):
        t = KafkaTopic("edges", num_partitions=2)
        fs = Hdfs(metrics=MetricsRegistry())
        m = MetricsRegistry()
        consumer = EdgeStreamConsumer(t, fs, landing_dir="/land",
                                      metrics=m)
        t.produce(np.array([0, 1, 2, 3]), np.array([4, 5, 6, 7]))
        self._crashing_hdfs(fs, fail_after=2)  # second partition file dies
        with pytest.raises(IOError):
            consumer.poll()
        # Nothing committed: offsets untouched, no records counted.
        assert consumer.lag == 4
        assert consumer.offsets == {0: 0, 1: 0}
        assert m.get("ingest.records") == 0
        assert not fs.exists(consumer.position_path)

    def test_retry_after_crash_loses_and_duplicates_nothing(self):
        t = KafkaTopic("edges", num_partitions=2)
        fs = Hdfs(metrics=MetricsRegistry())
        consumer = EdgeStreamConsumer(t, fs, landing_dir="/land")
        t.produce(np.array([0, 1, 2, 3]), np.array([4, 5, 6, 7]))
        self._crashing_hdfs(fs, fail_after=2)
        with pytest.raises(IOError):
            consumer.poll()
        # The retry relands deterministically named files: the partial
        # first attempt is overwritten, not duplicated.
        assert consumer.poll() == 4
        files = fs.listdir("/land")
        assert len(files) == 2  # one per partition, single batch
        lines = sorted(l for f in files for l in fs.read_lines(f))
        assert lines == ["0\t4", "1\t5", "2\t6", "3\t7"]

    def test_crash_before_merge_keeps_ps_table_consistent(self):
        ctx = make_psg()
        try:
            table = ctx.ps.create_neighbor_table("stream-adj", 100)
            t = KafkaTopic("edges", num_partitions=1)
            consumer = EdgeStreamConsumer(t, ctx.hdfs, landing_dir="/land",
                                          table=table)
            t.produce(np.array([1, 2]), np.array([2, 3]))
            state = self._crashing_hdfs(ctx.hdfs, fail_after=1)
            with pytest.raises(IOError):
                consumer.poll()
            # Crash hit before the merge: the table saw nothing.
            assert table.get(np.array([2]))[0].tolist() == []
            state["writes"] = -10**9  # heal the filesystem
            assert consumer.poll() == 2
            # Replayed merge is idempotent set-union: no duplicates.
            assert consumer.poll() == 0
            assert table.get(np.array([2]))[0].tolist() == [1, 3]
        finally:
            ctx.stop()


class TestConsumerRecovery:
    """Chaos: kill the consumer mid-stream; a restarted one catches up."""

    def _run_stream(self, ctx, *, crash_after_polls=None):
        table = ctx.ps.create_neighbor_table("stream-adj", 200)
        t = KafkaTopic("edges", num_partitions=2)
        consumer = EdgeStreamConsumer(t, ctx.hdfs, landing_dir="/land",
                                      table=table)
        rng = np.random.default_rng(11)
        polls = 0
        for _ in range(6):
            src = rng.integers(0, 200, size=10)
            dst = (src + 1 + rng.integers(0, 199, size=10)) % 200
            t.produce(src, dst)
            t.produce_removals(src[:2], dst[:2])
            if crash_after_polls is not None and polls >= crash_after_polls:
                # The process dies here; its in-memory offsets are lost.
                consumer = EdgeStreamConsumer(
                    t, ctx.hdfs, landing_dir="/land", table=table,
                    resume=True,
                )
                crash_after_polls = None
            consumer.poll()
            polls += 1
        consumer.drain()
        return table, t

    def test_restart_from_persisted_offsets_matches_clean_run(self):
        clean = make_psg()
        chaos = make_psg()
        try:
            table_a, topic_a = self._run_stream(clean)
            table_b, topic_b = self._run_stream(chaos,
                                                crash_after_polls=3)
            vs = np.arange(200)
            for a, b in zip(table_a.get(vs), table_b.get(vs)):
                assert a.tolist() == b.tolist()
            # The landing history has no gaps and no duplicate batches.
            names_a = sorted(clean.hdfs.listdir("/land"))
            names_b = sorted(chaos.hdfs.listdir("/land"))
            assert names_a == names_b
            assert len(names_b) == len(set(names_b))
        finally:
            clean.stop()
            chaos.stop()
