"""Tests for the experiment harness and (tiny-scale) experiment runs."""

import pytest

from repro.experiments.ablations import ablation_partitioners
from repro.experiments.figure6 import PAPER_FIG6, run_figure6
from repro.experiments.harness import (
    ExperimentRow,
    format_rows,
    speedup,
    timed_run,
)
from repro.experiments.report import ascii_bars, format_dicts
from repro.experiments.table1 import run_table1


class TestHarness:
    def test_projection_hours(self):
        r = ExperimentRow("x", "S", "D", "a", "ok", sim_seconds=3.6,
                          scale=1e-3)
        assert r.projected == pytest.approx(1.0)

    def test_projection_seconds_unit(self):
        r = ExperimentRow("x", "S", "D", "a", "ok", sim_seconds=0.002,
                          scale=1e-3, unit="seconds")
        assert r.projected == pytest.approx(2.0)

    def test_oom_row_display(self):
        r = ExperimentRow("x", "S", "D", "a", "OOM", sim_seconds=None,
                          scale=1e-3)
        assert r.projected is None
        assert r.display_value() == "OOM"

    def test_timed_run_captures_oom(self):
        from repro.common.errors import SimulatedOOMError
        from repro.common.memory import MemoryTracker

        tracker = MemoryTracker("c", capacity=10)

        def boom():
            tracker.allocate(100)

        status, sim, wall, result = timed_run(boom, lambda: 0.0)
        assert status == "OOM"
        assert sim is None
        assert isinstance(result, SimulatedOOMError)

    def test_timed_run_measures_sim_delta(self):
        clock = {"t": 5.0}

        def work():
            clock["t"] += 2.5
            return "done"

        status, sim, _w, result = timed_run(work, lambda: clock["t"])
        assert status == "ok"
        assert sim == pytest.approx(2.5)
        assert result == "done"

    def test_speedup(self):
        rows = [
            ExperimentRow("x", "PSGraph", "D", "a", "ok", 1.0, 1.0),
            ExperimentRow("x", "GraphX", "D", "a", "ok", 8.0, 1.0),
        ]
        assert speedup(rows, "D", "a") == pytest.approx(8.0)

    def test_speedup_none_on_oom(self):
        rows = [
            ExperimentRow("x", "PSGraph", "D", "a", "ok", 1.0, 1.0),
            ExperimentRow("x", "GraphX", "D", "a", "OOM", None, 1.0),
        ]
        assert speedup(rows, "D", "a") is None

    def test_format_rows_contains_cells(self):
        rows = [ExperimentRow("x", "S", "D", "algo", "ok", 1.0, 1.0,
                              paper_value=2.0)]
        text = format_rows(rows, "TITLE")
        assert "TITLE" in text
        assert "algo" in text
        assert "2" in text

    def test_ascii_bars(self):
        rows = [
            ExperimentRow("x", "A", "D", "a", "ok", 3600.0, 1.0),
            ExperimentRow("x", "B", "D", "a", "OOM", None, 1.0),
        ]
        chart = ascii_bars(rows)
        assert "#" in chart
        assert "OOM" in chart

    def test_format_dicts(self):
        text = format_dicts([{"variant": "x", "v": 1.5}], "T")
        assert "variant" in text and "1.5" in text


class TestTinyExperiments:
    """Each paper experiment runs end-to-end at a throwaway scale."""

    def test_figure6_single_cell_tiny(self):
        rows = run_figure6(
            scale_ds1=5e-7, cells=[("PageRank", "DS1")],
        )
        assert {r.system for r in rows} == {"PSGraph", "GraphX"}
        ps = [r for r in rows if r.system == "PSGraph"][0]
        assert ps.status == "ok"
        assert ps.paper_value == PAPER_FIG6[("PageRank", "DS1", "PSGraph")]
        assert ps.projected is not None and ps.projected > 0

    def test_figure6_psgraph_only_subset(self):
        rows = run_figure6(
            scale_ds1=5e-7, cells=[("KCore", "DS1")],
            systems=("PSGraph",),
        )
        assert len(rows) == 1
        assert rows[0].status == "ok"
        assert rows[0].extra.get("iterations", 0) >= 1

    def test_table1_tiny_scale(self):
        rows = run_table1(scale=3e-5)
        systems = {r.system for r in rows}
        assert systems == {"PSGraph", "Euler"}
        prep = {r.system: r for r in rows
                if r.algorithm == "graphsage-preprocess"}
        # Euler's disk-through preprocessing is the slow one.
        assert prep["Euler"].projected > prep["PSGraph"].projected

    def test_partitioner_ablation_is_deterministic(self):
        a = ablation_partitioners(num_vertices=10_000, num_partitions=8)
        b = ablation_partitioners(num_vertices=10_000, num_partitions=8)
        assert a == b


class TestResourceEfficiency:
    def test_tiny_sweep_shape(self):
        from repro.experiments.resources import (
            run_resource_efficiency,
            total_memory_gb,
        )

        assert total_memory_gb(100, 55) == 5500
        assert total_memory_gb(100, 20, 20, 15) == 2300
        rows = run_resource_efficiency(
            scale=2e-6, graphx_executor_gbs=(55.0,)
        )
        systems = {r["system"] for r in rows}
        assert systems == {"GraphX", "PSGraph"}
        ps = [r for r in rows if r["system"] == "PSGraph"][0]
        assert ps["status"] == "ok"
